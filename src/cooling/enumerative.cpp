#include "photecc/cooling/enumerative.hpp"

#include <limits>
#include <stdexcept>
#include <string>

namespace photecc::cooling {
namespace {

constexpr std::uint64_t kSaturated = std::numeric_limits<std::uint64_t>::max();

[[nodiscard]] std::uint64_t saturating_add(std::uint64_t a,
                                           std::uint64_t b) noexcept {
  return (a > kSaturated - b) ? kSaturated : a + b;
}

}  // namespace

BoundedWeightCoder::BoundedWeightCoder(std::size_t length,
                                       std::size_t max_weight)
    : length_(length), max_weight_(max_weight) {
  if (length < 2) {
    throw std::invalid_argument(
        "BoundedWeightCoder: length must be >= 2, got " +
        std::to_string(length));
  }
  if (max_weight < 1 || max_weight > length) {
    throw std::invalid_argument(
        "BoundedWeightCoder: max_weight must be in [1, " +
        std::to_string(length) + "], got " + std::to_string(max_weight));
  }

  // Prefix-binomial table cle(j, r) = sum_{i=0}^{r} C(j, i) via the
  // Pascal-style recurrence cle(j, r) = cle(j-1, r) + cle(j-1, r-1),
  // with cle(0, r) = 1 and cle(j, 0) = 1.  Saturating adds keep every
  // entry an upper bound that is exact whenever it is below kSaturated;
  // rank/unrank only ever compare saturated entries against ranks
  // < 2^63, for which the comparison result is unchanged.
  cle_.assign((length_ + 1) * (max_weight_ + 1), 1);
  for (std::size_t j = 1; j <= length_; ++j) {
    for (std::size_t r = 1; r <= max_weight_; ++r) {
      cle_[j * (max_weight_ + 1) + r] =
          saturating_add(cle_[(j - 1) * (max_weight_ + 1) + r],
                         cle_[(j - 1) * (max_weight_ + 1) + r - 1]);
    }
  }

  count_ = count_le(length_, max_weight_);
  message_bits_ = 0;
  while (message_bits_ < 63 &&
         (std::uint64_t{1} << (message_bits_ + 1)) <= count_) {
    ++message_bits_;
  }
  if (count_ == kSaturated) message_bits_ = 63;
}

ecc::BitVec BoundedWeightCoder::unrank(std::uint64_t value) const {
  if (message_bits_ < 63 && value >= (std::uint64_t{1} << message_bits_)) {
    throw std::invalid_argument(
        "BoundedWeightCoder::unrank: value " + std::to_string(value) +
        " out of range for " + std::to_string(message_bits_) +
        " message bits");
  }
  ecc::BitVec word(length_);
  std::uint64_t remaining = value;
  std::size_t ones = 0;
  // Scan from the most significant position down.  At position j there
  // are cle(j, max_weight_ - ones) words with bit j clear and all the
  // remaining freedom below; ranks below that count keep bit j = 0.
  for (std::size_t j = length_; j-- > 0;) {
    const std::uint64_t zero_branch = count_le(j, max_weight_ - ones);
    if (remaining < zero_branch) continue;
    word.set(j, true);
    remaining -= zero_branch;
    ++ones;
    if (ones == max_weight_) {
      // No capacity left: every remaining bit must be 0 and each
      // zero-branch count is exactly 1, so remaining must hit 0 here.
      break;
    }
  }
  if (remaining != 0) {
    throw std::invalid_argument(
        "BoundedWeightCoder::unrank: value " + std::to_string(value) +
        " exceeds word count");
  }
  return word;
}

std::uint64_t BoundedWeightCoder::rank(const ecc::BitVec& word) const {
  if (word.size() != length_) {
    throw std::invalid_argument(
        "BoundedWeightCoder::rank: word length " +
        std::to_string(word.size()) + " != " + std::to_string(length_));
  }
  if (word.popcount() > max_weight_) {
    throw std::invalid_argument(
        "BoundedWeightCoder::rank: word weight " +
        std::to_string(word.popcount()) + " exceeds bound " +
        std::to_string(max_weight_));
  }
  std::uint64_t value = 0;
  std::size_t ones = 0;
  for (std::size_t j = length_; j-- > 0;) {
    if (!word.get(j)) continue;
    value = saturating_add(value, count_le(j, max_weight_ - ones));
    ++ones;
  }
  return value;
}

}  // namespace photecc::cooling
