#include "photecc/cooling/cooling_code.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "photecc/ecc/registry.hpp"
#include "photecc/ecc/uncoded.hpp"

namespace photecc::cooling {
namespace {

constexpr const char* kPrefix = "COOL(";

[[nodiscard]] bool all_digits(const std::string& s) {
  return !s.empty() &&
         std::all_of(s.begin(), s.end(), [](unsigned char c) {
           return std::isdigit(c) != 0;
         });
}

[[nodiscard]] std::size_t parse_size(const std::string& s,
                                     const std::string& name,
                                     const char* what) {
  if (!all_digits(s)) {
    throw std::invalid_argument("cooling code '" + name + "': " + what +
                                " '" + s + "' is not a positive integer");
  }
  return static_cast<std::size_t>(std::stoull(s));
}

/// Construction-time check that the inner encoder is in systematic form:
/// the zero message encodes to the zero codeword, and each unit message
/// vector e_i lights exactly one codeword position p_i that no other e_j
/// lights.  For a linear encoder this means codeword[p_i] == message[i]
/// for every message, which is what the wire weight bound
/// w + (n - m) rests on (message positions carry at most w ones, the
/// remaining n - m positions at most n - m).
void require_systematic(const ecc::BlockCode& inner, const std::string& name) {
  const std::size_t m = inner.message_length();
  const std::size_t n = inner.block_length();
  if (inner.encode(ecc::BitVec(m)).popcount() != 0) {
    throw std::invalid_argument("cooling code '" + name +
                                "': inner encoder is not linear "
                                "(zero message -> non-zero codeword)");
  }
  // ones_count[p] = how many unit vectors light codeword position p.
  std::vector<std::size_t> ones_count(n, 0);
  std::vector<ecc::BitVec> columns;
  columns.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    ecc::BitVec e(m);
    e.set(i, true);
    columns.push_back(inner.encode(e));
    for (std::size_t p = 0; p < n; ++p) {
      if (columns.back().get(p)) ++ones_count[p];
    }
  }
  for (std::size_t i = 0; i < m; ++i) {
    bool found = false;
    for (std::size_t p = 0; p < n && !found; ++p) {
      found = columns[i].get(p) && ones_count[p] == 1;
    }
    if (!found) {
      throw std::invalid_argument(
          "cooling code '" + name + "': inner code " + inner.name() +
          " is not systematic (message bit " + std::to_string(i) +
          " has no dedicated codeword position), so the wire weight "
          "bound would not hold");
    }
  }
}

}  // namespace

std::string cooling_name(std::size_t length, std::size_t weight) {
  return "COOL(" + std::to_string(length) + "," + std::to_string(weight) +
         ")";
}

std::string cooling_name(const std::string& inner, std::size_t weight) {
  return "COOL(" + inner + "," + std::to_string(weight) + ")";
}

bool is_cooling_name(const std::string& name) {
  return name.rfind(kPrefix, 0) == 0;
}

std::optional<CoolingName> parse_cooling_name(const std::string& name) {
  if (!is_cooling_name(name)) return std::nullopt;
  if (name.back() != ')') {
    throw std::invalid_argument("cooling code '" + name +
                                "': missing closing ')'");
  }
  const std::string body =
      name.substr(std::string(kPrefix).size(),
                  name.size() - std::string(kPrefix).size() - 1);
  // The inner name may itself contain commas (e.g. BCH(15,7,2)), so the
  // weight is everything after the LAST comma.
  const std::size_t comma = body.rfind(',');
  if (comma == std::string::npos || comma == 0 || comma + 1 == body.size()) {
    throw std::invalid_argument(
        "cooling code '" + name +
        "': expected COOL(n,w) or COOL(<inner>,w)");
  }
  CoolingName parsed;
  parsed.weight = parse_size(body.substr(comma + 1), name, "weight");
  const std::string head = body.substr(0, comma);
  if (all_digits(head)) {
    parsed.pure = true;
    parsed.length = parse_size(head, name, "length");
  } else {
    if (is_cooling_name(head)) {
      throw std::invalid_argument("cooling code '" + name +
                                  "': nested cooling inner codes are "
                                  "not supported");
    }
    parsed.inner = head;
  }
  return parsed;
}

CoolingScheme::CoolingScheme(const CoolingName& parsed)
    : inner_(parsed.pure
                 ? std::make_shared<ecc::UncodedScheme>(parsed.length)
                 : ecc::make_code(parsed.inner)),
      coder_(inner_->message_length(), parsed.weight),
      name_(parsed.pure ? cooling_name(parsed.length, parsed.weight)
                        : cooling_name(inner_->name(), parsed.weight)) {
  require_systematic(*inner_, name_);
  const double n = static_cast<double>(inner_->block_length());
  const double m = static_cast<double>(inner_->message_length());
  const double w = static_cast<double>(parsed.weight);
  duty_bound_ = std::min(1.0, (w + (n - m)) / n);
}

std::size_t CoolingScheme::block_length() const noexcept {
  return inner_->block_length();
}

std::size_t CoolingScheme::min_distance() const noexcept {
  return inner_->min_distance();
}

ecc::BitVec CoolingScheme::encode(const ecc::BitVec& message) const {
  if (message.size() != message_length()) {
    throw std::invalid_argument(
        "CoolingScheme::encode: message size " +
        std::to_string(message.size()) + " != " +
        std::to_string(message_length()));
  }
  return inner_->encode(coder_.unrank(message.to_uint()));
}

ecc::DecodeResult CoolingScheme::decode(const ecc::BitVec& received) const {
  ecc::DecodeResult result = inner_->decode(received);
  const ecc::BitVec word = std::move(result.message);
  const std::size_t k = message_length();
  result.message = ecc::BitVec(k);
  if (word.popcount() > coder_.max_weight()) {
    // Residual errors pushed the word outside the bounded-weight set —
    // detectable even for the pure (distance-1) form.
    result.error_detected = true;
    return result;
  }
  const std::uint64_t value = coder_.rank(word);
  if (k < 63 && value >= (std::uint64_t{1} << k)) {
    // Valid bounded-weight word, but outside the 2^k message range.
    result.error_detected = true;
    return result;
  }
  result.message = ecc::BitVec::from_uint(value, k);
  return result;
}

codec::BitSlab CoolingScheme::encode_batch(
    const codec::BitSlab& messages) const {
  const std::size_t k = message_length();
  if (messages.bits() != k) {
    throw std::invalid_argument(
        "CoolingScheme::encode_batch: message size " +
        std::to_string(messages.bits()) + " != " + std::to_string(k));
  }
  // Lane-serial enumerative unrank into the inner message slab, then
  // the inner code's batch kernel.
  codec::BitSlab inner_messages(inner_->message_length(), messages.lanes());
  for (std::size_t l = 0; l < messages.lanes(); ++l) {
    std::uint64_t value = 0;
    for (std::size_t i = 0; i < k; ++i)
      value |= ((messages.word(i) >> l) & 1u) << i;
    const ecc::BitVec word = coder_.unrank(value);
    const std::span<const std::uint64_t> ww = word.words();
    for (std::size_t i = 0; i < word.size(); ++i)
      inner_messages.word(i) |= ((ww[i / 64] >> (i % 64)) & 1u) << l;
  }
  return inner_->encode_batch(inner_messages);
}

ecc::BatchDecodeResult CoolingScheme::decode_batch(
    const codec::BitSlab& received) const {
  ecc::BatchDecodeResult inner_result = inner_->decode_batch(received);
  const std::size_t k = message_length();
  ecc::BatchDecodeResult result;
  result.messages = codec::BitSlab(k, received.lanes());
  result.error_detected = inner_result.error_detected;
  result.corrected = inner_result.corrected;
  for (std::size_t l = 0; l < received.lanes(); ++l) {
    const ecc::BitVec word = inner_result.messages.transpose_out(l);
    if (word.popcount() > coder_.max_weight()) {
      // Outside the bounded-weight set: detectable even for the pure
      // (distance-1) form; the lane's message stays zero.
      result.error_detected |= std::uint64_t{1} << l;
      continue;
    }
    const std::uint64_t value = coder_.rank(word);
    if (k < 63 && value >= (std::uint64_t{1} << k)) {
      // Valid bounded-weight word, but outside the 2^k message range.
      result.error_detected |= std::uint64_t{1} << l;
      continue;
    }
    for (std::size_t i = 0; i < k; ++i)
      result.messages.word(i) |= ((value >> i) & 1u) << l;
  }
  return result;
}

double CoolingScheme::decoded_ber(double raw_p) const {
  // The enumerative outer decode scrambles roughly half the message
  // bits whenever ANY of the m inner message bits is residually wrong:
  //   BER = 0.5 * (1 - (1 - q)^m),  q = inner residual BER.
  // Computed via expm1/log1p so it stays strictly increasing down to
  // q ~ 1e-18 (the numeric inversion in required_raw_ber_checked needs
  // strict monotonicity over the whole search bracket).
  const double q = inner_->decoded_ber(raw_p);
  const double m = static_cast<double>(inner_->message_length());
  return -0.5 * std::expm1(m * std::log1p(-q));
}

ecc::BlockCodePtr make_cooling_code(const std::string& name) {
  const auto parsed = parse_cooling_name(name);
  if (!parsed) {
    throw std::invalid_argument("make_cooling_code: '" + name +
                                "' is not a cooling-code name");
  }
  return std::make_shared<CoolingScheme>(*parsed);
}

ecc::BlockCodePtr try_make_cooling_code(const std::string& name) {
  if (!is_cooling_name(name)) return nullptr;
  return make_cooling_code(name);
}

void register_cooling_codes() {
  ecc::register_code_factory("cooling", [](const std::string& name) {
    return try_make_cooling_code(name);
  });
}

}  // namespace photecc::cooling
