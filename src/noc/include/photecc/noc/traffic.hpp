// Traffic generation for the ONoC simulators: uniform random, hotspot,
// periodic streaming, phase-based application traces and file-driven
// message timelines — the workloads the paper's introduction motivates
// (real-time + multimedia mixes on a many-core).
//
// Generators address tiles: message sources and destinations are tile
// indices.  The single-channel NocSimulator identifies tile == ONI (one
// reader channel per tile); NetworkSimulator routes each message to the
// destination tile's home channel (see network.hpp).
#ifndef PHOTECC_NOC_TRAFFIC_HPP
#define PHOTECC_NOC_TRAFFIC_HPP

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "photecc/math/rng.hpp"
#include "photecc/noc/message.hpp"

namespace photecc::noc {

/// Generates the complete arrival schedule for one simulation run.
///
/// Seed-derivation contract: `generate(horizon, seed)` is a pure
/// function of its arguments.  A composite generator (PhaseTraceTraffic,
/// MixedTraffic, or any user-written wrapper) MUST derive the seed for
/// child k as math::derive_seed(seed, k) — never seed+k or another
/// arithmetic neighbour.  Arithmetic offsets collide across siblings
/// and nesting depths (the k-th child of seed s and the (k-1)-th child
/// of seed s+1 would replay identical RNG streams); the splitmix64
/// mixer keeps every (seed, child index) pair decorrelated.
class TrafficGenerator {
 public:
  virtual ~TrafficGenerator() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// All messages with creation_time_s < horizon_s, sorted by time.
  [[nodiscard]] virtual std::vector<Message> generate(
      double horizon_s, std::uint64_t seed) const = 0;
};

/// Poisson arrivals, uniformly random source/destination tile pairs.
class UniformRandomTraffic final : public TrafficGenerator {
 public:
  /// `rate_msgs_per_s`: aggregate injection rate over the whole NoC.
  UniformRandomTraffic(std::size_t tile_count, double rate_msgs_per_s,
                       std::uint64_t payload_bits,
                       TrafficClass cls = TrafficClass::kBestEffort,
                       double target_ber = 1e-9);

  [[nodiscard]] std::string name() const override { return "uniform"; }
  [[nodiscard]] std::vector<Message> generate(
      double horizon_s, std::uint64_t seed) const override;

  [[nodiscard]] double target_ber() const noexcept { return target_ber_; }

 private:
  std::size_t tile_count_;
  double rate_;
  std::uint64_t payload_bits_;
  TrafficClass class_;
  double target_ber_;
};

/// Like uniform, but a fraction of the traffic targets one hot tile
/// (e.g. a memory controller).
class HotspotTraffic final : public TrafficGenerator {
 public:
  HotspotTraffic(std::size_t tile_count, double rate_msgs_per_s,
                 std::uint64_t payload_bits, std::size_t hotspot,
                 double hotspot_fraction);

  [[nodiscard]] std::string name() const override { return "hotspot"; }
  [[nodiscard]] std::vector<Message> generate(
      double horizon_s, std::uint64_t seed) const override;

 private:
  std::size_t tile_count_;
  double rate_;
  std::uint64_t payload_bits_;
  std::size_t hotspot_;
  double hotspot_fraction_;
};

/// Periodic multimedia-like streams: fixed-size frames from fixed
/// producers to fixed consumers with per-frame deadlines.
class StreamingTraffic final : public TrafficGenerator {
 public:
  struct Stream {
    std::size_t source = 0;
    std::size_t destination = 0;
    double period_s = 1e-6;
    std::uint64_t frame_bits = 64 * 1024;
    /// Deadline as a fraction of the period.
    double deadline_fraction = 1.0;
    TrafficClass cls = TrafficClass::kMultimedia;
  };

  explicit StreamingTraffic(std::vector<Stream> streams);

  [[nodiscard]] std::string name() const override { return "streaming"; }
  [[nodiscard]] std::vector<Message> generate(
      double horizon_s, std::uint64_t seed) const override;

 private:
  std::vector<Stream> streams_;
};

/// Phase-based synthetic application trace: a cyclic sequence of
/// (duration, generator) phases, e.g. compute (light uniform) then
/// communicate (heavy all-to-all).
class PhaseTraceTraffic final : public TrafficGenerator {
 public:
  struct Phase {
    double duration_s = 1e-6;
    std::shared_ptr<const TrafficGenerator> generator;
  };

  explicit PhaseTraceTraffic(std::vector<Phase> phases);

  [[nodiscard]] std::string name() const override { return "phase-trace"; }
  [[nodiscard]] std::vector<Message> generate(
      double horizon_s, std::uint64_t seed) const override;

 private:
  std::vector<Phase> phases_;
};

/// Message timeline read from a trace file — replayed measurements or
/// externally generated workloads.
///
/// Trace format (one message per line, whitespace-separated):
///
///     # comment — '#' lines and blank lines are ignored
///     <time_s> <source> <destination> <payload_bits> [class] [deadline_s]
///
/// where `time_s` is the creation time in seconds (>= 0, any order —
/// the trace is sorted on load), `source`/`destination` are tile
/// indices (self-loops rejected), `payload_bits` > 0, `class` is one of
/// `rt`/`real-time`, `mm`/`multimedia`, `be`/`best-effort` (default
/// `be`), and `deadline_s` is an optional absolute deadline.  A
/// deadline requires the class column.  See examples/traces/ for a
/// sample.
class TraceTraffic final : public TrafficGenerator {
 public:
  /// Parses the trace format from `in`; `origin` names the source in
  /// parse errors (std::invalid_argument, with a line number).
  [[nodiscard]] static TraceTraffic parse(std::istream& in,
                                          const std::string& origin = "trace");

  /// Reads and parses `path`; std::runtime_error when unreadable.
  [[nodiscard]] static TraceTraffic from_file(const std::string& path);

  /// Adopts an in-memory timeline (sorted on construction, ids
  /// renumbered in time order).
  explicit TraceTraffic(std::vector<Message> messages);

  [[nodiscard]] std::string name() const override { return "trace"; }

  /// The messages with creation_time_s < horizon_s.  Deterministic:
  /// `seed` is unused, replays are bit-identical.
  [[nodiscard]] std::vector<Message> generate(
      double horizon_s, std::uint64_t seed) const override;

  [[nodiscard]] const std::vector<Message>& messages() const noexcept {
    return messages_;
  }

 private:
  std::vector<Message> messages_;  ///< sorted by creation time
};

/// Merges the schedules of several generators.
class MixedTraffic final : public TrafficGenerator {
 public:
  explicit MixedTraffic(
      std::vector<std::shared_ptr<const TrafficGenerator>> parts);

  [[nodiscard]] std::string name() const override { return "mixed"; }
  [[nodiscard]] std::vector<Message> generate(
      double horizon_s, std::uint64_t seed) const override;

 private:
  std::vector<std::shared_ptr<const TrafficGenerator>> parts_;
};

}  // namespace photecc::noc

#endif  // PHOTECC_NOC_TRAFFIC_HPP
