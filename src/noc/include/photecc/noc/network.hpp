// Event-driven tiled photonic network: N tiles sharing K MWSR
// broadcast channels.
//
// The single-channel NocSimulator models the paper's Fig. 2a topology
// (one reader channel per ONI, everything homogeneous).  The network
// generalises it along the axes the single-link paper cannot express:
//
//  * a NetworkTopology maps tiles to shared channels (interleaved or
//    blocked), so K can be much smaller than N;
//  * every channel owns its manager, its coding-scheme menu and its
//    thermal environment timeline — hot-spot readers can run strong
//    codes while cool edge channels stay uncoded;
//  * arbitration is per channel over per-tile virtual-channel queues,
//    the same round-robin grant the paper's arbiter uses.
//
// Each channel runs through the shared channel engine (see
// channel_engine.hpp) with two sinks — its own NocStats and the network
// aggregate — so aggregated statistics accumulate message by message in
// channel order.  A one-channel-per-tile network with uniform
// configuration therefore reproduces NocSimulator bit for bit; the
// tests pin that reduction.
#ifndef PHOTECC_NOC_NETWORK_HPP
#define PHOTECC_NOC_NETWORK_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "photecc/core/manager.hpp"
#include "photecc/env/environment.hpp"
#include "photecc/math/rng.hpp"
#include "photecc/noc/message.hpp"
#include "photecc/noc/simulator.hpp"

namespace photecc::noc {

/// Tile-to-channel map of the shared-channel network.
struct NetworkTopology {
  /// How tiles are distributed over the channels.
  enum class Mapping {
    kInterleaved,  ///< tile t reads channel t % K (neighbours spread)
    kBlocked,      ///< contiguous blocks of ceil(N/K) tiles per channel
  };

  std::size_t tile_count = 16;
  std::size_t channel_count = 4;
  Mapping mapping = Mapping::kInterleaved;

  /// Throws std::invalid_argument on an unusable geometry.
  void validate() const;

  /// Channel that delivers messages addressed to `tile`.
  [[nodiscard]] std::size_t channel_of_tile(std::size_t tile) const;

  /// Tiles whose inbound traffic `channel` carries, ascending.
  [[nodiscard]] std::vector<std::size_t> tiles_of_channel(
      std::size_t channel) const;

  [[nodiscard]] bool operator==(const NetworkTopology&) const = default;
};

/// Per-channel overrides; fields left at their defaults inherit the
/// network-wide configuration.
struct NetworkChannelConfig {
  /// Thermal environment of this channel's waveguide/reader region
  /// (hot-spot readers vs cool edges); overrides base_link's timeline.
  std::optional<env::EnvironmentTimeline> environment;
  /// Coding menu offered to this channel's manager; empty inherits the
  /// network menu.  A one-element menu pins the channel to that code.
  std::vector<ecc::BlockCodePtr> scheme_menu;
  /// Photonic ONI count the channel's link budget is solved with
  /// (rings/drops on the waveguide); 0 inherits tile_count.
  std::size_t oni_count = 0;
};

/// Network configuration: the topology plus the homogeneous baseline
/// every channel starts from and the per-channel overrides.
struct NetworkConfig {
  NetworkTopology topology{};
  link::MwsrParams base_link{};  ///< oni_count is resolved per channel
  core::SystemConfig system{};
  /// Network-wide scheme menu (empty: the paper's three schemes).
  std::vector<ecc::BlockCodePtr> scheme_menu;
  /// Per-channel overrides; empty means K default channels, otherwise
  /// exactly topology.channel_count entries.
  std::vector<NetworkChannelConfig> channels;
  std::map<TrafficClass, ClassRequirements> class_requirements;
  ClassRequirements default_requirements{};
  bool laser_gating = true;
  double laser_wake_s = 10e-9;
  double arbitration_s = 2e-9;
  double flight_time_s = 0.8e-9;
  core::RecalibrationConfig recalibration{};
};

/// Network statistics: the aggregate view plus the per-channel
/// breakdown.  `aggregate` is finalised exactly like a NocSimulator
/// run over the same event stream (global latency order, summed
/// energies), so single-channel reductions compare bit for bit.
struct NetworkStats {
  NocStats aggregate;
  std::vector<NocStats> channels;
  /// Delivered payload bits per channel (aggregate total is in
  /// NetworkRunResult::total_payload_bits).
  std::vector<std::uint64_t> channel_payload_bits;
};

/// Result of a network run.
struct NetworkRunResult {
  NetworkStats stats;
  std::uint64_t total_payload_bits = 0;
  /// Per-message log in delivery order (channel-major); each entry's
  /// `channel` field names the delivering channel.  Filled when
  /// keep_log is set.
  std::vector<DeliveredMessage> log;
};

/// The tiled-network simulator.
class NetworkSimulator {
 public:
  explicit NetworkSimulator(NetworkConfig config);

  /// Runs the tile-addressed schedule produced by `traffic` (sources
  /// and destinations are tile indices) up to `horizon_s`.
  [[nodiscard]] NetworkRunResult run(const TrafficGenerator& traffic,
                                     double horizon_s, std::uint64_t seed,
                                     bool keep_log = false) const;

  /// Runs a pre-built tile-addressed message schedule.
  [[nodiscard]] NetworkRunResult run(std::vector<Message> schedule,
                                     double horizon_s,
                                     bool keep_log = false) const;

  /// Seed for per-channel derived workloads: `base` itself for a
  /// single-channel network (bit-identical reduction to the
  /// single-channel simulator), math::derive_seed(base, channel)
  /// otherwise.  Composite seeding must go through derive_seed — see
  /// the contract in traffic.hpp.
  [[nodiscard]] static std::uint64_t channel_seed(std::uint64_t base,
                                                  std::size_t channel_count,
                                                  std::size_t channel) {
    return channel_count <= 1 ? base : math::derive_seed(base, channel);
  }

  [[nodiscard]] const NetworkConfig& config() const noexcept {
    return config_;
  }
  /// The manager owning channel `ch`'s link budget and code menu.
  [[nodiscard]] const core::LinkManager& manager(std::size_t ch) const {
    return *managers_.at(ch);
  }

 private:
  NetworkConfig config_;
  /// Resolved per-channel state (post override-inheritance).
  std::vector<std::shared_ptr<core::LinkManager>> managers_;
  std::vector<bool> has_env_;
};

}  // namespace photecc::noc

#endif  // PHOTECC_NOC_NETWORK_HPP
