// The per-channel discrete-event engine shared by NocSimulator (one
// reader channel per ONI, homogeneous) and NetworkSimulator (K channels
// with per-channel managers, menus and thermal timelines).
//
// One call simulates one MWSR channel: round-robin arbitration over
// per-writer virtual-channel queues, laser gating/wake, closed-loop
// thermal integration and drift-triggered recalibration, and the
// paper's per-transfer energy model.  The engine itself holds no
// totals — every statistic is written through one or more ChannelSinks.
//
// The multi-sink design is what keeps the refactor bit-identical: a
// network run hands each channel BOTH its per-channel sink and the
// shared aggregate sink, so the aggregate accumulates message by
// message in channel order — the exact floating-point addition order of
// the original single-loop simulator.  Summing per-channel subtotals
// after the fact would regroup the additions ((a+b)+(c+d) instead of
// ((a+b)+c)+d) and drift in the last ulp.
#ifndef PHOTECC_NOC_CHANNEL_ENGINE_HPP
#define PHOTECC_NOC_CHANNEL_ENGINE_HPP

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "photecc/core/manager.hpp"
#include "photecc/env/environment.hpp"
#include "photecc/math/stats.hpp"
#include "photecc/noc/message.hpp"
#include "photecc/noc/simulator.hpp"

namespace photecc::noc {

/// Accumulation target of one channel run.  Null members are skipped,
/// so a sink can collect only what its owner finalises (e.g. the
/// aggregate sink of a heterogeneous network skips phase accumulators).
struct ChannelSink {
  NocStats* stats = nullptr;
  /// Delivered latencies, appended in completion order; the owner sorts
  /// and finalises mean/max/p95 after all channels ran.
  std::vector<double>* latencies = nullptr;
  std::map<TrafficClass, math::RunningStats>* class_latency = nullptr;
  std::uint64_t* total_payload_bits = nullptr;
  std::vector<DeliveredMessage>* log = nullptr;
  /// Phase accumulators sized to the params' phase windows; only valid
  /// when the sink's owner shares the channel's timeline.
  std::vector<NocPhaseStats>* phase_stats = nullptr;
  std::vector<math::RunningStats>* phase_latency = nullptr;
};

/// Static inputs of one channel run.
struct ChannelParams {
  /// Writer virtual-channel queues, one per message source index.  The
  /// single-channel simulator queues per ONI; the network queues per
  /// tile.  This is an addressing size, independent of the photonic
  /// oni_count the link budget was solved with.
  std::size_t queue_count = 0;
  std::size_t wavelengths = 0;
  double f_mod_hz = 0.0;
  bool laser_gating = true;
  double laser_wake_s = 0.0;
  double arbitration_s = 0.0;
  double flight_time_s = 0.0;
  double horizon_s = 0.0;
  std::size_t channel_index = 0;  ///< stamped on DeliveredMessage rows
  bool keep_log = false;
  /// Closed-loop environment; `timeline` must outlive the call and
  /// `windows` must be timeline->phase_windows(horizon_s) when has_env.
  bool has_env = false;
  const env::EnvironmentTimeline* timeline = nullptr;
  const std::vector<env::EnvironmentTimeline::PhaseWindow>* windows = nullptr;
  core::RecalibrationConfig recalibration{};
  /// Per-class requirements; classes not present use the default.
  const std::map<TrafficClass, ClassRequirements>* class_requirements =
      nullptr;
  const ClassRequirements* default_requirements = nullptr;
};

/// Simulates one channel's schedule (sorted in place by creation time)
/// and accumulates into every sink.  `baseline_feasible` classifies a
/// drop as thermal when the request is feasible at the t = 0 baseline;
/// it is consulted only on drops under an environment timeline, and the
/// caller owns any caching (the single-channel simulator shares one
/// cache across channels because they share one manager).
void run_channel(std::vector<Message>& messages, const ChannelParams& params,
                 const std::shared_ptr<const core::LinkManager>& manager,
                 const std::function<bool(const core::CommunicationRequest&)>&
                     baseline_feasible,
                 const std::vector<ChannelSink>& sinks);

/// Finalises a sink's accumulated statistics after its last channel
/// ran: sorts `latencies` (in place) and fills mean/max/p95, per-class
/// mean latencies, per-phase mean latencies (moving `phase_stats` into
/// stats.phases when non-null), and the total-energy sum.
void finalize_stats(
    NocStats& stats, std::vector<double>& latencies,
    const std::map<TrafficClass, math::RunningStats>& class_latency,
    std::vector<NocPhaseStats>* phase_stats,
    const std::vector<math::RunningStats>* phase_latency);

}  // namespace photecc::noc

#endif  // PHOTECC_NOC_CHANNEL_ENGINE_HPP
