// Message model of the ONoC simulator.
#ifndef PHOTECC_NOC_MESSAGE_HPP
#define PHOTECC_NOC_MESSAGE_HPP

#include <cstdint>
#include <optional>
#include <string>

namespace photecc::noc {

/// Traffic classes with distinct communication requirements (paper
/// Section III-C: real-time tasks need deadlines, multimedia-like tasks
/// can trade BER/time for energy).
enum class TrafficClass : std::uint8_t {
  kRealTime,    ///< latency-critical, deadline-bound
  kMultimedia,  ///< throughput-oriented, energy-saving preferred
  kBestEffort,  ///< background traffic
};

[[nodiscard]] std::string to_string(TrafficClass cls);

/// One end-to-end transfer request.  Sources and destinations are tile
/// indices; the single-channel simulator identifies tile == ONI, the
/// tiled network routes to the destination tile's home channel.
struct Message {
  std::uint64_t id = 0;
  std::size_t source = 0;       ///< writer tile
  std::size_t destination = 0;  ///< reader tile (its channel delivers)
  std::uint64_t payload_bits = 0;
  double creation_time_s = 0.0;
  TrafficClass traffic_class = TrafficClass::kBestEffort;
  /// Absolute deadline [s]; empty for no deadline.
  std::optional<double> deadline_s;

  [[nodiscard]] bool operator==(const Message&) const = default;
};

}  // namespace photecc::noc

#endif  // PHOTECC_NOC_MESSAGE_HPP
