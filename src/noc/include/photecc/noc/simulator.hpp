// Discrete-event simulator of an MWSR ONoC with the Optical Link
// Energy/Performance Manager in the loop.
//
// Topology: one MWSR channel per reader ONI (paper Fig. 2a).  A writer
// with a pending message requests the destination channel; a round-robin
// arbiter grants it (token-style, with a fixed arbitration overhead per
// grant).  The manager then selects the coding scheme and laser setting
// for the transfer according to the message's traffic class.
//
// Energy accounting follows the paper's power model: the laser burns
// Plaser(scheme) per wavelength while transmitting; with laser gating
// enabled (ref [9]) it is off when the channel idles, otherwise it keeps
// burning at the idle operating point.
#ifndef PHOTECC_NOC_SIMULATOR_HPP
#define PHOTECC_NOC_SIMULATOR_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "photecc/core/manager.hpp"
#include "photecc/env/environment.hpp"
#include "photecc/noc/message.hpp"
#include "photecc/noc/traffic.hpp"

namespace photecc::noc {

/// Per-traffic-class communication requirements handed to the manager.
struct ClassRequirements {
  double target_ber = 1e-9;
  core::Policy policy = core::Policy::kMinEnergy;
  std::optional<double> max_ct;
  std::optional<double> max_channel_power_w;
};

/// Simulator configuration.
struct NocConfig {
  std::size_t oni_count = 12;
  link::MwsrParams link_params{};  ///< oni_count is copied in
  core::SystemConfig system{};
  /// Scheme menu offered to the manager (paper: the three schemes).
  std::vector<ecc::BlockCodePtr> scheme_menu;
  /// Per-class requirements; classes not present use the default.
  std::map<TrafficClass, ClassRequirements> class_requirements;
  ClassRequirements default_requirements{};
  /// Turn lasers off between transfers (ref [9]).
  bool laser_gating = true;
  double laser_wake_s = 10e-9;     ///< gating wake-up latency
  double arbitration_s = 2e-9;     ///< per-grant arbitration overhead
  double flight_time_s = 0.8e-9;   ///< time of flight over the waveguide
  /// Closed-loop recalibration knobs, active when link_params declares
  /// an environment timeline.  Without a timeline the manager solves at
  /// the static operating point and recalibration costs nothing — the
  /// pre-environment behaviour, bit for bit.
  core::RecalibrationConfig recalibration{};
};

/// Outcome of one delivered message.
struct DeliveredMessage {
  Message message;
  /// Index of the channel that delivered it: the destination ONI in the
  /// single-channel simulator, the shared network channel in a tiled
  /// network run.
  std::size_t channel = 0;
  double start_time_s = 0.0;       ///< transmission start (after grant)
  double completion_time_s = 0.0;
  double latency_s = 0.0;          ///< completion - creation
  std::string scheme;              ///< code chosen by the manager
  double energy_j = 0.0;           ///< laser + MR + codec for this transfer
  bool deadline_missed = false;
  /// Environment activity sampled when this transfer was configured.
  double activity = 0.0;
  /// True when this transfer forced a manager re-solve (drift past the
  /// hysteresis band, or the first transfer of its request).
  bool recalibrated = false;
};

/// Statistics of one environment phase window (see
/// env::EnvironmentTimeline::phase_windows); filled only when the
/// simulator runs with an environment timeline.
struct NocPhaseStats {
  std::string label;
  double start_s = 0.0;
  double end_s = 0.0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t deadline_misses = 0;
  double mean_latency_s = 0.0;

  [[nodiscard]] bool operator==(const NocPhaseStats&) const = default;
};

/// Aggregate statistics of one run.
struct NocStats {
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;       ///< no feasible scheme
  /// Drops caused by a thermal infeasibility window: the request is
  /// feasible at the timeline's t = 0 baseline but not at the sampled
  /// environment (subset of `dropped`; zero without a timeline).
  std::uint64_t dropped_thermal = 0;
  std::uint64_t deadline_misses = 0;
  double mean_latency_s = 0.0;
  double max_latency_s = 0.0;
  /// 95th-percentile latency by the nearest-rank definition: the value
  /// at 1-indexed rank ceil(0.95 * N) of the sorted latencies (no
  /// interpolation; for N = 20 that is the 19th smallest).
  double p95_latency_s = 0.0;
  double total_energy_j = 0.0;
  double laser_energy_j = 0.0;
  double mr_energy_j = 0.0;
  double codec_energy_j = 0.0;
  double idle_laser_energy_j = 0.0;  ///< burned while idle (no gating)
  double busy_time_s = 0.0;          ///< summed channel busy time
  double horizon_s = 0.0;
  /// Closed-loop accounting (zero without an environment timeline):
  /// manager re-solves triggered by drift, and their summed cost.
  /// recalibration_energy_j is part of total_energy_j.
  std::uint64_t recalibrations = 0;
  double recalibration_energy_j = 0.0;
  double recalibration_latency_s = 0.0;
  /// Highest / end-of-horizon activity sampled on any channel (the
  /// hottest channel's view); filled only when a timeline is declared.
  double peak_activity = 0.0;
  double final_activity = 0.0;
  /// Per-phase breakdown over the timeline's phase windows (empty
  /// without an environment timeline).
  std::vector<NocPhaseStats> phases;
  /// Scheme usage histogram (scheme name -> transfers).
  std::map<std::string, std::uint64_t> scheme_usage;
  /// Mean latency per traffic class.
  std::map<TrafficClass, double> class_mean_latency_s;

  /// Energy per delivered payload bit [J].
  [[nodiscard]] double energy_per_bit_j(std::uint64_t payload_bits) const {
    return payload_bits ? total_energy_j / static_cast<double>(payload_bits)
                        : 0.0;
  }

  /// Exact (bitwise on doubles) equality — the back-compat contract of
  /// the network refactor is pinned with this.
  [[nodiscard]] bool operator==(const NocStats&) const = default;
};

/// Result of a run: stats plus (optionally) the per-message log.
struct NocRunResult {
  NocStats stats;
  std::uint64_t total_payload_bits = 0;
  std::vector<DeliveredMessage> log;  ///< filled when keep_log is set
};

/// The simulator.
class NocSimulator {
 public:
  explicit NocSimulator(NocConfig config);

  /// Runs the schedule produced by `traffic` up to `horizon_s`.
  /// Transfers still in flight at the horizon complete (the horizon
  /// bounds arrivals, not drain).
  [[nodiscard]] NocRunResult run(const TrafficGenerator& traffic,
                                 double horizon_s, std::uint64_t seed,
                                 bool keep_log = false) const;

  /// Runs a pre-built message schedule.
  [[nodiscard]] NocRunResult run(std::vector<Message> schedule,
                                 double horizon_s,
                                 bool keep_log = false) const;

  [[nodiscard]] const NocConfig& config() const noexcept { return config_; }
  [[nodiscard]] const core::LinkManager& manager() const noexcept {
    return *manager_;
  }

 private:
  [[nodiscard]] const ClassRequirements& requirements_for(
      TrafficClass cls) const;

  NocConfig config_;
  std::shared_ptr<core::LinkManager> manager_;
};

}  // namespace photecc::noc

#endif  // PHOTECC_NOC_SIMULATOR_HPP
