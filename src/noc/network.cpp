#include "photecc/noc/network.hpp"

#include <stdexcept>
#include <utility>

#include "photecc/ecc/registry.hpp"
#include "photecc/noc/channel_engine.hpp"

namespace photecc::noc {

void NetworkTopology::validate() const {
  if (tile_count < 2)
    throw std::invalid_argument("NetworkTopology: need >= 2 tiles");
  if (channel_count < 1)
    throw std::invalid_argument("NetworkTopology: need >= 1 channel");
  if (channel_count > tile_count)
    throw std::invalid_argument(
        "NetworkTopology: more channels than tiles");
}

std::size_t NetworkTopology::channel_of_tile(std::size_t tile) const {
  if (tile >= tile_count)
    throw std::out_of_range("NetworkTopology::channel_of_tile: bad tile");
  switch (mapping) {
    case Mapping::kBlocked: {
      const std::size_t block =
          (tile_count + channel_count - 1) / channel_count;
      return std::min(tile / block, channel_count - 1);
    }
    case Mapping::kInterleaved:
    default:
      return tile % channel_count;
  }
}

std::vector<std::size_t> NetworkTopology::tiles_of_channel(
    std::size_t channel) const {
  if (channel >= channel_count)
    throw std::out_of_range("NetworkTopology::tiles_of_channel: bad channel");
  std::vector<std::size_t> tiles;
  for (std::size_t t = 0; t < tile_count; ++t)
    if (channel_of_tile(t) == channel) tiles.push_back(t);
  return tiles;
}

NetworkSimulator::NetworkSimulator(NetworkConfig config)
    : config_(std::move(config)) {
  config_.topology.validate();
  const std::size_t channel_count = config_.topology.channel_count;
  if (config_.channels.empty()) {
    config_.channels.resize(channel_count);
  } else if (config_.channels.size() != channel_count) {
    throw std::invalid_argument(
        "NetworkSimulator: channels must be empty or one per channel");
  }
  if (config_.scheme_menu.empty()) config_.scheme_menu = ecc::paper_schemes();

  managers_.reserve(channel_count);
  has_env_.reserve(channel_count);
  for (std::size_t ch = 0; ch < channel_count; ++ch) {
    NetworkChannelConfig& overrides = config_.channels[ch];
    link::MwsrParams link = config_.base_link;
    if (overrides.environment) link.environment = overrides.environment;
    const std::size_t oni =
        overrides.oni_count ? overrides.oni_count : config_.topology.tile_count;
    if (oni < 2)
      throw std::invalid_argument("NetworkSimulator: need >= 2 ONIs");
    link.oni_count = oni;
    core::SystemConfig system = config_.system;
    system.oni_count = oni;
    const auto& menu = overrides.scheme_menu.empty() ? config_.scheme_menu
                                                     : overrides.scheme_menu;
    managers_.push_back(std::make_shared<core::LinkManager>(
        link::MwsrChannel(link), menu, system));
    has_env_.push_back(link.environment.has_value());
  }
}

NetworkRunResult NetworkSimulator::run(const TrafficGenerator& traffic,
                                       double horizon_s, std::uint64_t seed,
                                       bool keep_log) const {
  return run(traffic.generate(horizon_s, seed), horizon_s, keep_log);
}

NetworkRunResult NetworkSimulator::run(std::vector<Message> schedule,
                                       double horizon_s,
                                       bool keep_log) const {
  if (horizon_s <= 0.0)
    throw std::invalid_argument("NetworkSimulator::run: non-positive horizon");
  const NetworkTopology& topo = config_.topology;
  const std::size_t channel_count = topo.channel_count;

  NetworkRunResult result;
  result.stats.aggregate.horizon_s = horizon_s;
  result.stats.channels.resize(channel_count);
  result.stats.channel_payload_bits.assign(channel_count, 0);

  // Route: the destination tile's home channel delivers the message.
  std::vector<std::vector<Message>> per_channel(channel_count);
  for (auto& m : schedule) {
    if (m.destination >= topo.tile_count || m.source >= topo.tile_count)
      throw std::invalid_argument("NetworkSimulator::run: tile out of range");
    if (m.source == m.destination)
      throw std::invalid_argument("NetworkSimulator::run: self loop message");
    per_channel[topo.channel_of_tile(m.destination)].push_back(std::move(m));
  }

  // Per-channel environments.  The aggregate tracks phase windows only
  // when every channel declares the same timeline (always true for one
  // channel) — under heterogeneous environments the network has no
  // single phase axis and aggregate.phases stays empty.
  std::vector<const env::EnvironmentTimeline*> timelines(channel_count);
  std::vector<std::vector<env::EnvironmentTimeline::PhaseWindow>> windows(
      channel_count);
  bool shared_env = true;
  for (std::size_t ch = 0; ch < channel_count; ++ch) {
    timelines[ch] = &managers_[ch]->channel().environment_timeline();
    if (has_env_[ch]) windows[ch] = timelines[ch]->phase_windows(horizon_s);
    if (!has_env_[ch] || !(*timelines[ch] == *timelines[0]))
      shared_env = false;
  }

  const auto make_phase_accumulators =
      [](const std::vector<env::EnvironmentTimeline::PhaseWindow>& wins,
         std::vector<NocPhaseStats>& stats,
         std::vector<math::RunningStats>& latency) {
        stats.resize(wins.size());
        latency.resize(wins.size());
        for (std::size_t i = 0; i < wins.size(); ++i) {
          stats[i].label = wins[i].label;
          stats[i].start_s = wins[i].start_s;
          stats[i].end_s = wins[i].end_s;
        }
      };

  // Aggregate accumulators (message order = channel-major, the exact
  // accumulation order of the single-channel simulator).
  std::vector<double> agg_latencies;
  std::map<TrafficClass, math::RunningStats> agg_class_latency;
  std::vector<NocPhaseStats> agg_phase_stats;
  std::vector<math::RunningStats> agg_phase_latency;
  if (shared_env)
    make_phase_accumulators(windows[0], agg_phase_stats, agg_phase_latency);

  ChannelParams params;
  params.queue_count = topo.tile_count;
  params.wavelengths = config_.system.wavelengths;
  params.f_mod_hz = config_.system.f_mod_hz;
  params.laser_gating = config_.laser_gating;
  params.laser_wake_s = config_.laser_wake_s;
  params.arbitration_s = config_.arbitration_s;
  params.flight_time_s = config_.flight_time_s;
  params.horizon_s = horizon_s;
  params.keep_log = keep_log;
  params.recalibration = config_.recalibration;
  params.class_requirements = &config_.class_requirements;
  params.default_requirements = &config_.default_requirements;

  ChannelSink aggregate;
  aggregate.stats = &result.stats.aggregate;
  aggregate.latencies = &agg_latencies;
  aggregate.class_latency = &agg_class_latency;
  aggregate.total_payload_bits = &result.total_payload_bits;
  aggregate.log = keep_log ? &result.log : nullptr;
  aggregate.phase_stats = shared_env ? &agg_phase_stats : nullptr;
  aggregate.phase_latency = shared_env ? &agg_phase_latency : nullptr;

  for (std::size_t ch = 0; ch < channel_count; ++ch) {
    params.channel_index = ch;
    params.has_env = has_env_[ch];
    params.timeline = timelines[ch];
    params.windows = &windows[ch];

    NocStats& channel_stats = result.stats.channels[ch];
    channel_stats.horizon_s = horizon_s;
    std::vector<double> latencies;
    std::map<TrafficClass, math::RunningStats> class_latency;
    std::vector<NocPhaseStats> phase_stats;
    std::vector<math::RunningStats> phase_latency;
    if (has_env_[ch])
      make_phase_accumulators(windows[ch], phase_stats, phase_latency);

    ChannelSink sink;
    sink.stats = &channel_stats;
    sink.latencies = &latencies;
    sink.class_latency = &class_latency;
    sink.total_payload_bits = &result.stats.channel_payload_bits[ch];
    sink.phase_stats = has_env_[ch] ? &phase_stats : nullptr;
    sink.phase_latency = has_env_[ch] ? &phase_latency : nullptr;

    // Thermal drop classification solves against this channel's own
    // manager (its link budget and menu), cached per channel.
    std::vector<std::pair<core::CommunicationRequest, bool>> baseline_cache;
    const auto baseline_feasible =
        [&](const core::CommunicationRequest& r) {
          for (const auto& [request, feasible] : baseline_cache)
            if (request == r) return feasible;
          const bool feasible = managers_[ch]->configure(r).has_value();
          baseline_cache.emplace_back(r, feasible);
          return feasible;
        };

    run_channel(per_channel[ch], params, managers_[ch], baseline_feasible,
                {sink, aggregate});

    finalize_stats(channel_stats, latencies, class_latency,
                   has_env_[ch] ? &phase_stats : nullptr,
                   has_env_[ch] ? &phase_latency : nullptr);
  }

  finalize_stats(result.stats.aggregate, agg_latencies, agg_class_latency,
                 shared_env ? &agg_phase_stats : nullptr,
                 shared_env ? &agg_phase_latency : nullptr);
  return result;
}

}  // namespace photecc::noc
