#include "photecc/noc/channel_engine.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <utility>

namespace photecc::noc {

void finalize_stats(
    NocStats& stats, std::vector<double>& latencies,
    const std::map<TrafficClass, math::RunningStats>& class_latency,
    std::vector<NocPhaseStats>* phase_stats,
    const std::vector<math::RunningStats>* phase_latency) {
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    double sum = 0.0;
    for (const double l : latencies) sum += l;
    stats.mean_latency_s = sum / static_cast<double>(latencies.size());
    stats.max_latency_s = latencies.back();
    stats.p95_latency_s =
        latencies[math::nearest_rank_index(latencies.size(), 0.95)];
  }
  for (const auto& [cls, cls_stats] : class_latency)
    stats.class_mean_latency_s[cls] = cls_stats.mean();
  if (phase_stats && phase_latency) {
    for (std::size_t i = 0; i < phase_stats->size(); ++i)
      (*phase_stats)[i].mean_latency_s = (*phase_latency)[i].mean();
    stats.phases = std::move(*phase_stats);
  }
  stats.total_energy_j = stats.laser_energy_j + stats.mr_energy_j +
                         stats.codec_energy_j + stats.idle_laser_energy_j +
                         stats.recalibration_energy_j;
}

void run_channel(std::vector<Message>& messages, const ChannelParams& params,
                 const std::shared_ptr<const core::LinkManager>& manager,
                 const std::function<bool(const core::CommunicationRequest&)>&
                     baseline_feasible,
                 const std::vector<ChannelSink>& sinks) {
  const std::size_t nw = params.wavelengths;
  const double f_mod = params.f_mod_hz;
  const bool has_env = params.has_env;
  const env::EnvironmentTimeline& timeline = *params.timeline;
  const core::RecalibrationConfig& recal_config = params.recalibration;
  static const std::vector<env::EnvironmentTimeline::PhaseWindow> kNoWindows;
  const auto& windows = params.windows ? *params.windows : kNoWindows;

  const auto requirements_for =
      [&](TrafficClass cls) -> const ClassRequirements& {
    const auto it = params.class_requirements->find(cls);
    return it == params.class_requirements->end()
               ? *params.default_requirements
               : it->second;
  };

  std::stable_sort(messages.begin(), messages.end(),
                   [](const Message& a, const Message& b) {
                     return a.creation_time_s < b.creation_time_s;
                   });
  // Round-robin arbitration among the writers of this channel.
  std::vector<std::deque<Message>> queues(params.queue_count);
  std::size_t arrival_index = 0;
  std::size_t rr_next = 0;
  double now = 0.0;
  double last_idle_power_w = 0.0;  // laser power of the last config
  double last_busy_end = 0.0;

  // Closed loop state: the environment integrator (fed with measured
  // busy fractions) and the recalibrating manager wrapping the
  // static solver with drift hysteresis.
  env::ThermalIntegrator integrator{timeline};
  core::RecalibratingManager recal{manager, recal_config};
  double last_advance_t = 0.0;
  double busy_since_advance = 0.0;
  // Grant times are monotone per channel, so the phase lookup is an
  // advancing cursor — O(1) amortised even for cyclic schedules with
  // many repeated windows.  Events past the horizon (drain) stay in
  // the tail window.
  std::size_t phase_cursor = 0;
  const auto phase_of = [&](double t) {
    while (phase_cursor + 1 < windows.size() &&
           t >= windows[phase_cursor + 1].start_s)
      ++phase_cursor;
    return phase_cursor;
  };

  const auto pending_count = [&] {
    std::size_t count = 0;
    for (const auto& q : queues) count += q.size();
    return count;
  };

  while (arrival_index < messages.size() || pending_count() > 0) {
    // Admit every arrival up to `now`; if the channel is idle with no
    // pending work, fast-forward to the next arrival.
    if (pending_count() == 0 &&
        messages[arrival_index].creation_time_s > now) {
      now = messages[arrival_index].creation_time_s;
    }
    while (arrival_index < messages.size() &&
           messages[arrival_index].creation_time_s <= now + 1e-15) {
      const Message& m = messages[arrival_index];
      queues[m.source].push_back(m);
      ++arrival_index;
    }
    if (pending_count() == 0) continue;

    // Round-robin grant.
    std::size_t granted = rr_next;
    for (std::size_t step = 0; step < params.queue_count; ++step) {
      const std::size_t candidate = (rr_next + step) % params.queue_count;
      if (!queues[candidate].empty()) {
        granted = candidate;
        break;
      }
    }
    rr_next = (granted + 1) % params.queue_count;
    Message msg = queues[granted].front();
    queues[granted].pop_front();

    const double grant_time = std::max(now, msg.creation_time_s);

    // Advance the environment to the grant, feeding back the busy
    // fraction observed since the previous advance (the self-heating
    // loop; declarative timelines just sample).
    env::EnvironmentSample sample = integrator.current();
    if (has_env) {
      const double dt = grant_time - last_advance_t;
      const double busy_fraction =
          dt > 0.0 ? std::min(1.0, busy_since_advance / dt) : 0.0;
      sample = integrator.advance_to(grant_time, busy_fraction);
      if (dt > 0.0) {
        last_advance_t = grant_time;
        busy_since_advance = 0.0;
      }
      for (const ChannelSink& sink : sinks)
        sink.stats->peak_activity =
            std::max(sink.stats->peak_activity, sample.activity);
    }

    const ClassRequirements& req = requirements_for(msg.traffic_class);
    core::CommunicationRequest request;
    request.target_ber = req.target_ber;
    request.policy = req.policy;
    request.max_ct = req.max_ct;
    request.max_channel_power_w = req.max_channel_power_w;
    const auto outcome = recal.configure(request, sample);
    if (!outcome.configuration) {
      for (const ChannelSink& sink : sinks) ++sink.stats->dropped;
      if (has_env) {
        const std::size_t phase = phase_of(grant_time);
        const bool thermal = baseline_feasible(request);
        for (const ChannelSink& sink : sinks) {
          if (sink.phase_stats) ++(*sink.phase_stats)[phase].dropped;
          if (thermal) ++sink.stats->dropped_thermal;
        }
      }
      continue;
    }
    const core::SchemeMetrics& metrics = outcome.configuration->metrics;

    const bool was_idle = grant_time > last_busy_end + 1e-15;
    const double wake =
        (params.laser_gating && was_idle) ? params.laser_wake_s : 0.0;
    const double recal_latency =
        outcome.recalibrated ? recal_config.recalibration_latency_s : 0.0;
    // Payload is striped over the NW wavelengths; parity stretches the
    // serialisation by CT = n/k.
    const double bits_per_lambda = std::ceil(
        static_cast<double>(msg.payload_bits) / static_cast<double>(nw));
    const double serialize_s = bits_per_lambda * metrics.ct / f_mod;
    const double start =
        grant_time + params.arbitration_s + wake + recal_latency;
    const double end = start + serialize_s + params.flight_time_s;

    // Energy for this transfer.
    const double laser_j =
        metrics.p_laser_w * static_cast<double>(nw) * (serialize_s + wake);
    const double mr_j = metrics.p_mr_w * static_cast<double>(nw) * serialize_s;
    const double codec_j =
        metrics.p_enc_dec_w * static_cast<double>(nw) * serialize_s;
    for (const ChannelSink& sink : sinks) {
      sink.stats->laser_energy_j += laser_j;
      sink.stats->mr_energy_j += mr_j;
      sink.stats->codec_energy_j += codec_j;
    }

    // Idle laser burn between transfers when gating is off.
    if (!params.laser_gating && was_idle && last_idle_power_w > 0.0) {
      const double idle_j = last_idle_power_w * static_cast<double>(nw) *
                            (grant_time - last_busy_end);
      for (const ChannelSink& sink : sinks)
        sink.stats->idle_laser_energy_j += idle_j;
    }
    last_idle_power_w = metrics.p_laser_w;
    last_busy_end = end;
    now = end;
    for (const ChannelSink& sink : sinks)
      sink.stats->busy_time_s += end - grant_time;
    // The self-heating loop sees the duty-bounded busy time: a cooling
    // code lighting at most duty_bound of the wires heats the array
    // proportionally less.  busy_time_s above stays raw occupancy.
    busy_since_advance += metrics.duty_bound < 1.0
                              ? (end - grant_time) * metrics.duty_bound
                              : (end - grant_time);

    const double latency = end - msg.creation_time_s;
    const bool missed = msg.deadline_s && end > *msg.deadline_s;
    std::size_t phase = 0;
    if (has_env) phase = phase_of(grant_time);
    for (const ChannelSink& sink : sinks) {
      if (sink.latencies) sink.latencies->push_back(latency);
      if (sink.class_latency) (*sink.class_latency)[msg.traffic_class].add(latency);
      ++sink.stats->delivered;
      if (sink.total_payload_bits) *sink.total_payload_bits += msg.payload_bits;
      if (missed) ++sink.stats->deadline_misses;
      ++sink.stats->scheme_usage[metrics.scheme];
      if (has_env && sink.phase_stats && sink.phase_latency) {
        ++(*sink.phase_stats)[phase].delivered;
        if (missed) ++(*sink.phase_stats)[phase].deadline_misses;
        (*sink.phase_latency)[phase].add(latency);
      }
    }

    if (params.keep_log) {
      DeliveredMessage d;
      d.message = msg;
      d.channel = params.channel_index;
      d.start_time_s = start;
      d.completion_time_s = end;
      d.latency_s = latency;
      d.scheme = metrics.scheme;
      d.energy_j = laser_j + mr_j + codec_j;
      d.deadline_missed = missed;
      d.activity = sample.activity;
      d.recalibrated = outcome.recalibrated;
      for (const ChannelSink& sink : sinks)
        if (sink.log) sink.log->push_back(d);
    }
  }
  // Tail idle burn up to the horizon when gating is off.
  if (!params.laser_gating && last_idle_power_w > 0.0 &&
      params.horizon_s > last_busy_end) {
    const double idle_j = last_idle_power_w * static_cast<double>(nw) *
                          (params.horizon_s - last_busy_end);
    for (const ChannelSink& sink : sinks)
      sink.stats->idle_laser_energy_j += idle_j;
  }
  if (has_env) {
    // Coast the integrator to the horizon (idle from the last event)
    // and report the hottest channel's view.
    const double dt = params.horizon_s - last_advance_t;
    const double busy_fraction =
        dt > 0.0 ? std::min(1.0, busy_since_advance / dt) : 0.0;
    const env::EnvironmentSample final_sample =
        integrator.advance_to(params.horizon_s, busy_fraction);
    for (const ChannelSink& sink : sinks) {
      sink.stats->peak_activity =
          std::max(sink.stats->peak_activity, final_sample.activity);
      sink.stats->final_activity =
          std::max(sink.stats->final_activity, final_sample.activity);
      sink.stats->recalibrations += recal.stats().recalibrations;
      sink.stats->recalibration_energy_j += recal.stats().energy_j;
      sink.stats->recalibration_latency_s += recal.stats().latency_s;
    }
  }
}

}  // namespace photecc::noc
