#include "photecc/noc/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>

#include "photecc/ecc/registry.hpp"
#include "photecc/math/stats.hpp"

namespace photecc::noc {

NocSimulator::NocSimulator(NocConfig config) : config_(std::move(config)) {
  if (config_.oni_count < 2)
    throw std::invalid_argument("NocSimulator: need >= 2 ONIs");
  if (config_.scheme_menu.empty())
    config_.scheme_menu = ecc::paper_schemes();
  config_.link_params.oni_count = config_.oni_count;
  config_.system.oni_count = config_.oni_count;
  manager_ = std::make_shared<core::LinkManager>(
      link::MwsrChannel(config_.link_params), config_.scheme_menu,
      config_.system);
}

const ClassRequirements& NocSimulator::requirements_for(
    TrafficClass cls) const {
  const auto it = config_.class_requirements.find(cls);
  return it == config_.class_requirements.end() ? config_.default_requirements
                                                : it->second;
}

NocRunResult NocSimulator::run(const TrafficGenerator& traffic,
                               double horizon_s, std::uint64_t seed,
                               bool keep_log) const {
  return run(traffic.generate(horizon_s, seed), horizon_s, keep_log);
}

NocRunResult NocSimulator::run(std::vector<Message> schedule,
                               double horizon_s, bool keep_log) const {
  if (horizon_s <= 0.0)
    throw std::invalid_argument("NocSimulator::run: non-positive horizon");
  NocRunResult result;
  result.stats.horizon_s = horizon_s;

  const std::size_t nw = config_.system.wavelengths;
  const double f_mod = config_.system.f_mod_hz;

  // Partition messages per destination channel (channels are
  // independent: every reader owns its waveguides and wavelengths).
  std::vector<std::vector<Message>> per_channel(config_.oni_count);
  for (auto& m : schedule) {
    if (m.destination >= config_.oni_count || m.source >= config_.oni_count)
      throw std::invalid_argument("NocSimulator::run: ONI out of range");
    if (m.source == m.destination)
      throw std::invalid_argument("NocSimulator::run: self loop message");
    per_channel[m.destination].push_back(std::move(m));
  }

  std::vector<double> latencies;
  std::map<TrafficClass, math::RunningStats> class_latency;

  for (std::size_t ch = 0; ch < config_.oni_count; ++ch) {
    auto& messages = per_channel[ch];
    std::stable_sort(messages.begin(), messages.end(),
                     [](const Message& a, const Message& b) {
                       return a.creation_time_s < b.creation_time_s;
                     });
    // Round-robin arbitration among the writers of this channel.
    std::vector<std::deque<Message>> queues(config_.oni_count);
    std::size_t arrival_index = 0;
    std::size_t rr_next = 0;
    double now = 0.0;
    double last_idle_power_w = 0.0;  // laser power of the last config
    double last_busy_end = 0.0;

    const auto pending_count = [&] {
      std::size_t count = 0;
      for (const auto& q : queues) count += q.size();
      return count;
    };

    while (arrival_index < messages.size() || pending_count() > 0) {
      // Admit every arrival up to `now`; if the channel is idle with no
      // pending work, fast-forward to the next arrival.
      if (pending_count() == 0 &&
          messages[arrival_index].creation_time_s > now) {
        now = messages[arrival_index].creation_time_s;
      }
      while (arrival_index < messages.size() &&
             messages[arrival_index].creation_time_s <= now + 1e-15) {
        const Message& m = messages[arrival_index];
        queues[m.source].push_back(m);
        ++arrival_index;
      }
      if (pending_count() == 0) continue;

      // Round-robin grant.
      std::size_t granted = rr_next;
      for (std::size_t step = 0; step < config_.oni_count; ++step) {
        const std::size_t candidate = (rr_next + step) % config_.oni_count;
        if (!queues[candidate].empty()) {
          granted = candidate;
          break;
        }
      }
      rr_next = (granted + 1) % config_.oni_count;
      Message msg = queues[granted].front();
      queues[granted].pop_front();

      const ClassRequirements& req = requirements_for(msg.traffic_class);
      core::CommunicationRequest request;
      request.target_ber = req.target_ber;
      request.policy = req.policy;
      request.max_ct = req.max_ct;
      request.max_channel_power_w = req.max_channel_power_w;
      const auto configuration = manager_->configure(request);
      if (!configuration) {
        ++result.stats.dropped;
        continue;
      }
      const core::SchemeMetrics& metrics = configuration->metrics;

      const double grant_time = std::max(now, msg.creation_time_s);
      const bool was_idle = grant_time > last_busy_end + 1e-15;
      const double wake =
          (config_.laser_gating && was_idle) ? config_.laser_wake_s : 0.0;
      // Payload is striped over the NW wavelengths; parity stretches the
      // serialisation by CT = n/k.
      const double bits_per_lambda = std::ceil(
          static_cast<double>(msg.payload_bits) / static_cast<double>(nw));
      const double serialize_s = bits_per_lambda * metrics.ct / f_mod;
      const double start = grant_time + config_.arbitration_s + wake;
      const double end = start + serialize_s + config_.flight_time_s;

      // Energy for this transfer.
      const double laser_j =
          metrics.p_laser_w * static_cast<double>(nw) * (serialize_s + wake);
      const double mr_j =
          metrics.p_mr_w * static_cast<double>(nw) * serialize_s;
      const double codec_j =
          metrics.p_enc_dec_w * static_cast<double>(nw) * serialize_s;
      result.stats.laser_energy_j += laser_j;
      result.stats.mr_energy_j += mr_j;
      result.stats.codec_energy_j += codec_j;

      // Idle laser burn between transfers when gating is off.
      if (!config_.laser_gating && was_idle && last_idle_power_w > 0.0) {
        result.stats.idle_laser_energy_j +=
            last_idle_power_w * static_cast<double>(nw) *
            (grant_time - last_busy_end);
      }
      last_idle_power_w = metrics.p_laser_w;
      last_busy_end = end;
      now = end;
      result.stats.busy_time_s += end - grant_time;

      const double latency = end - msg.creation_time_s;
      latencies.push_back(latency);
      class_latency[msg.traffic_class].add(latency);
      ++result.stats.delivered;
      result.total_payload_bits += msg.payload_bits;
      const bool missed = msg.deadline_s && end > *msg.deadline_s;
      if (missed) ++result.stats.deadline_misses;
      ++result.stats.scheme_usage[metrics.scheme];

      if (keep_log) {
        DeliveredMessage d;
        d.message = msg;
        d.start_time_s = start;
        d.completion_time_s = end;
        d.latency_s = latency;
        d.scheme = metrics.scheme;
        d.energy_j = laser_j + mr_j + codec_j;
        d.deadline_missed = missed;
        result.log.push_back(std::move(d));
      }
    }
    // Tail idle burn up to the horizon when gating is off.
    if (!config_.laser_gating && last_idle_power_w > 0.0 &&
        horizon_s > last_busy_end) {
      result.stats.idle_laser_energy_j +=
          last_idle_power_w * static_cast<double>(nw) *
          (horizon_s - last_busy_end);
    }
  }

  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    double sum = 0.0;
    for (const double l : latencies) sum += l;
    result.stats.mean_latency_s = sum / static_cast<double>(latencies.size());
    result.stats.max_latency_s = latencies.back();
    const std::size_t p95_index = static_cast<std::size_t>(
        std::floor(0.95 * static_cast<double>(latencies.size() - 1)));
    result.stats.p95_latency_s = latencies[p95_index];
  }
  for (const auto& [cls, stats] : class_latency)
    result.stats.class_mean_latency_s[cls] = stats.mean();
  result.stats.total_energy_j =
      result.stats.laser_energy_j + result.stats.mr_energy_j +
      result.stats.codec_energy_j + result.stats.idle_laser_energy_j;
  return result;
}

}  // namespace photecc::noc
