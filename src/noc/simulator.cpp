#include "photecc/noc/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>
#include <utility>

#include "photecc/ecc/registry.hpp"
#include "photecc/math/stats.hpp"

namespace photecc::noc {

NocSimulator::NocSimulator(NocConfig config) : config_(std::move(config)) {
  if (config_.oni_count < 2)
    throw std::invalid_argument("NocSimulator: need >= 2 ONIs");
  if (config_.scheme_menu.empty())
    config_.scheme_menu = ecc::paper_schemes();
  config_.link_params.oni_count = config_.oni_count;
  config_.system.oni_count = config_.oni_count;
  manager_ = std::make_shared<core::LinkManager>(
      link::MwsrChannel(config_.link_params), config_.scheme_menu,
      config_.system);
}

const ClassRequirements& NocSimulator::requirements_for(
    TrafficClass cls) const {
  const auto it = config_.class_requirements.find(cls);
  return it == config_.class_requirements.end() ? config_.default_requirements
                                                : it->second;
}

NocRunResult NocSimulator::run(const TrafficGenerator& traffic,
                               double horizon_s, std::uint64_t seed,
                               bool keep_log) const {
  return run(traffic.generate(horizon_s, seed), horizon_s, keep_log);
}

NocRunResult NocSimulator::run(std::vector<Message> schedule,
                               double horizon_s, bool keep_log) const {
  if (horizon_s <= 0.0)
    throw std::invalid_argument("NocSimulator::run: non-positive horizon");
  NocRunResult result;
  result.stats.horizon_s = horizon_s;

  const std::size_t nw = config_.system.wavelengths;
  const double f_mod = config_.system.f_mod_hz;

  // The time-varying environment: the channel's resolved timeline.
  // When the NocConfig declares no timeline the channel falls back to
  // the constant chip-activity alias, every sample equals the static
  // operating point and recalibration costs nothing — the
  // pre-environment event loop, bit for bit.
  const bool has_env = config_.link_params.environment.has_value();
  const env::EnvironmentTimeline& timeline =
      manager_->channel().environment_timeline();
  // Recalibration cost accrues only on drift-triggered re-solves, so a
  // constant timeline (and the chip_activity alias) never pays it.
  const core::RecalibrationConfig& recal_config = config_.recalibration;

  // Per-phase accumulators over the timeline's phase windows.
  std::vector<env::EnvironmentTimeline::PhaseWindow> windows;
  std::vector<math::RunningStats> phase_latency;
  std::vector<NocPhaseStats> phase_stats;
  if (has_env) {
    windows = timeline.phase_windows(horizon_s);
    phase_latency.resize(windows.size());
    phase_stats.resize(windows.size());
    for (std::size_t i = 0; i < windows.size(); ++i) {
      phase_stats[i].label = windows[i].label;
      phase_stats[i].start_s = windows[i].start_s;
      phase_stats[i].end_s = windows[i].end_s;
    }
  }
  // Partition messages per destination channel (channels are
  // independent: every reader owns its waveguides and wavelengths).
  std::vector<std::vector<Message>> per_channel(config_.oni_count);
  for (auto& m : schedule) {
    if (m.destination >= config_.oni_count || m.source >= config_.oni_count)
      throw std::invalid_argument("NocSimulator::run: ONI out of range");
    if (m.source == m.destination)
      throw std::invalid_argument("NocSimulator::run: self loop message");
    per_channel[m.destination].push_back(std::move(m));
  }

  std::vector<double> latencies;
  std::map<TrafficClass, math::RunningStats> class_latency;
  // Baseline (t = 0) feasibility per request, for classifying drops as
  // thermal: lazily solved, cached by request.
  std::vector<std::pair<core::CommunicationRequest, bool>>
      baseline_feasibility;
  const auto baseline_feasible = [&](const core::CommunicationRequest& r) {
    for (const auto& [request, feasible] : baseline_feasibility)
      if (request == r) return feasible;
    const bool feasible = manager_->configure(r).has_value();
    baseline_feasibility.emplace_back(r, feasible);
    return feasible;
  };

  for (std::size_t ch = 0; ch < config_.oni_count; ++ch) {
    auto& messages = per_channel[ch];
    std::stable_sort(messages.begin(), messages.end(),
                     [](const Message& a, const Message& b) {
                       return a.creation_time_s < b.creation_time_s;
                     });
    // Round-robin arbitration among the writers of this channel.
    std::vector<std::deque<Message>> queues(config_.oni_count);
    std::size_t arrival_index = 0;
    std::size_t rr_next = 0;
    double now = 0.0;
    double last_idle_power_w = 0.0;  // laser power of the last config
    double last_busy_end = 0.0;

    // Closed loop state: the environment integrator (fed with measured
    // busy fractions) and the recalibrating manager wrapping the
    // static solver with drift hysteresis.
    env::ThermalIntegrator integrator{timeline};
    core::RecalibratingManager recal{manager_, recal_config};
    double last_advance_t = 0.0;
    double busy_since_advance = 0.0;
    // Grant times are monotone per channel, so the phase lookup is an
    // advancing cursor — O(1) amortised even for cyclic schedules with
    // many repeated windows.  Events past the horizon (drain) stay in
    // the tail window.
    std::size_t phase_cursor = 0;
    const auto phase_of = [&](double t) {
      while (phase_cursor + 1 < windows.size() &&
             t >= windows[phase_cursor + 1].start_s)
        ++phase_cursor;
      return phase_cursor;
    };

    const auto pending_count = [&] {
      std::size_t count = 0;
      for (const auto& q : queues) count += q.size();
      return count;
    };

    while (arrival_index < messages.size() || pending_count() > 0) {
      // Admit every arrival up to `now`; if the channel is idle with no
      // pending work, fast-forward to the next arrival.
      if (pending_count() == 0 &&
          messages[arrival_index].creation_time_s > now) {
        now = messages[arrival_index].creation_time_s;
      }
      while (arrival_index < messages.size() &&
             messages[arrival_index].creation_time_s <= now + 1e-15) {
        const Message& m = messages[arrival_index];
        queues[m.source].push_back(m);
        ++arrival_index;
      }
      if (pending_count() == 0) continue;

      // Round-robin grant.
      std::size_t granted = rr_next;
      for (std::size_t step = 0; step < config_.oni_count; ++step) {
        const std::size_t candidate = (rr_next + step) % config_.oni_count;
        if (!queues[candidate].empty()) {
          granted = candidate;
          break;
        }
      }
      rr_next = (granted + 1) % config_.oni_count;
      Message msg = queues[granted].front();
      queues[granted].pop_front();

      const double grant_time = std::max(now, msg.creation_time_s);

      // Advance the environment to the grant, feeding back the busy
      // fraction observed since the previous advance (the self-heating
      // loop; declarative timelines just sample).
      env::EnvironmentSample sample = integrator.current();
      if (has_env) {
        const double dt = grant_time - last_advance_t;
        const double busy_fraction =
            dt > 0.0 ? std::min(1.0, busy_since_advance / dt) : 0.0;
        sample = integrator.advance_to(grant_time, busy_fraction);
        if (dt > 0.0) {
          last_advance_t = grant_time;
          busy_since_advance = 0.0;
        }
        result.stats.peak_activity =
            std::max(result.stats.peak_activity, sample.activity);
      }

      const ClassRequirements& req = requirements_for(msg.traffic_class);
      core::CommunicationRequest request;
      request.target_ber = req.target_ber;
      request.policy = req.policy;
      request.max_ct = req.max_ct;
      request.max_channel_power_w = req.max_channel_power_w;
      const auto outcome = recal.configure(request, sample);
      if (!outcome.configuration) {
        ++result.stats.dropped;
        if (has_env) {
          const std::size_t phase = phase_of(grant_time);
          ++phase_stats[phase].dropped;
          if (baseline_feasible(request)) ++result.stats.dropped_thermal;
        }
        continue;
      }
      const core::SchemeMetrics& metrics = outcome.configuration->metrics;

      const bool was_idle = grant_time > last_busy_end + 1e-15;
      const double wake =
          (config_.laser_gating && was_idle) ? config_.laser_wake_s : 0.0;
      const double recal_latency =
          outcome.recalibrated ? recal_config.recalibration_latency_s : 0.0;
      // Payload is striped over the NW wavelengths; parity stretches the
      // serialisation by CT = n/k.
      const double bits_per_lambda = std::ceil(
          static_cast<double>(msg.payload_bits) / static_cast<double>(nw));
      const double serialize_s = bits_per_lambda * metrics.ct / f_mod;
      const double start =
          grant_time + config_.arbitration_s + wake + recal_latency;
      const double end = start + serialize_s + config_.flight_time_s;

      // Energy for this transfer.
      const double laser_j =
          metrics.p_laser_w * static_cast<double>(nw) * (serialize_s + wake);
      const double mr_j =
          metrics.p_mr_w * static_cast<double>(nw) * serialize_s;
      const double codec_j =
          metrics.p_enc_dec_w * static_cast<double>(nw) * serialize_s;
      result.stats.laser_energy_j += laser_j;
      result.stats.mr_energy_j += mr_j;
      result.stats.codec_energy_j += codec_j;

      // Idle laser burn between transfers when gating is off.
      if (!config_.laser_gating && was_idle && last_idle_power_w > 0.0) {
        result.stats.idle_laser_energy_j +=
            last_idle_power_w * static_cast<double>(nw) *
            (grant_time - last_busy_end);
      }
      last_idle_power_w = metrics.p_laser_w;
      last_busy_end = end;
      now = end;
      result.stats.busy_time_s += end - grant_time;
      busy_since_advance += end - grant_time;

      const double latency = end - msg.creation_time_s;
      latencies.push_back(latency);
      class_latency[msg.traffic_class].add(latency);
      ++result.stats.delivered;
      result.total_payload_bits += msg.payload_bits;
      const bool missed = msg.deadline_s && end > *msg.deadline_s;
      if (missed) ++result.stats.deadline_misses;
      ++result.stats.scheme_usage[metrics.scheme];
      if (has_env) {
        const std::size_t phase = phase_of(grant_time);
        ++phase_stats[phase].delivered;
        if (missed) ++phase_stats[phase].deadline_misses;
        phase_latency[phase].add(latency);
      }

      if (keep_log) {
        DeliveredMessage d;
        d.message = msg;
        d.start_time_s = start;
        d.completion_time_s = end;
        d.latency_s = latency;
        d.scheme = metrics.scheme;
        d.energy_j = laser_j + mr_j + codec_j;
        d.deadline_missed = missed;
        d.activity = sample.activity;
        d.recalibrated = outcome.recalibrated;
        result.log.push_back(std::move(d));
      }
    }
    // Tail idle burn up to the horizon when gating is off.
    if (!config_.laser_gating && last_idle_power_w > 0.0 &&
        horizon_s > last_busy_end) {
      result.stats.idle_laser_energy_j +=
          last_idle_power_w * static_cast<double>(nw) *
          (horizon_s - last_busy_end);
    }
    if (has_env) {
      // Coast the integrator to the horizon (idle from the last event)
      // and report the hottest channel's view.
      const double dt = horizon_s - last_advance_t;
      const double busy_fraction =
          dt > 0.0 ? std::min(1.0, busy_since_advance / dt) : 0.0;
      const env::EnvironmentSample final_sample =
          integrator.advance_to(horizon_s, busy_fraction);
      result.stats.peak_activity =
          std::max(result.stats.peak_activity, final_sample.activity);
      result.stats.final_activity =
          std::max(result.stats.final_activity, final_sample.activity);
      result.stats.recalibrations += recal.stats().recalibrations;
      result.stats.recalibration_energy_j += recal.stats().energy_j;
      result.stats.recalibration_latency_s += recal.stats().latency_s;
    }
  }

  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    double sum = 0.0;
    for (const double l : latencies) sum += l;
    result.stats.mean_latency_s = sum / static_cast<double>(latencies.size());
    result.stats.max_latency_s = latencies.back();
    result.stats.p95_latency_s =
        latencies[math::nearest_rank_index(latencies.size(), 0.95)];
  }
  for (const auto& [cls, stats] : class_latency)
    result.stats.class_mean_latency_s[cls] = stats.mean();
  if (has_env) {
    for (std::size_t i = 0; i < phase_stats.size(); ++i)
      phase_stats[i].mean_latency_s = phase_latency[i].mean();
    result.stats.phases = std::move(phase_stats);
  }
  result.stats.total_energy_j =
      result.stats.laser_energy_j + result.stats.mr_energy_j +
      result.stats.codec_energy_j + result.stats.idle_laser_energy_j +
      result.stats.recalibration_energy_j;
  return result;
}

}  // namespace photecc::noc
