#include "photecc/noc/simulator.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "photecc/ecc/registry.hpp"
#include "photecc/math/stats.hpp"
#include "photecc/noc/channel_engine.hpp"

namespace photecc::noc {

NocSimulator::NocSimulator(NocConfig config) : config_(std::move(config)) {
  if (config_.oni_count < 2)
    throw std::invalid_argument("NocSimulator: need >= 2 ONIs");
  if (config_.scheme_menu.empty())
    config_.scheme_menu = ecc::paper_schemes();
  config_.link_params.oni_count = config_.oni_count;
  config_.system.oni_count = config_.oni_count;
  manager_ = std::make_shared<core::LinkManager>(
      link::MwsrChannel(config_.link_params), config_.scheme_menu,
      config_.system);
}

const ClassRequirements& NocSimulator::requirements_for(
    TrafficClass cls) const {
  const auto it = config_.class_requirements.find(cls);
  return it == config_.class_requirements.end() ? config_.default_requirements
                                                : it->second;
}

NocRunResult NocSimulator::run(const TrafficGenerator& traffic,
                               double horizon_s, std::uint64_t seed,
                               bool keep_log) const {
  return run(traffic.generate(horizon_s, seed), horizon_s, keep_log);
}

NocRunResult NocSimulator::run(std::vector<Message> schedule,
                               double horizon_s, bool keep_log) const {
  if (horizon_s <= 0.0)
    throw std::invalid_argument("NocSimulator::run: non-positive horizon");
  NocRunResult result;
  result.stats.horizon_s = horizon_s;

  const std::size_t nw = config_.system.wavelengths;
  const double f_mod = config_.system.f_mod_hz;

  // The time-varying environment: the channel's resolved timeline.
  // When the NocConfig declares no timeline the channel falls back to
  // the constant chip-activity alias, every sample equals the static
  // operating point and recalibration costs nothing — the
  // pre-environment event loop, bit for bit.
  const bool has_env = config_.link_params.environment.has_value();
  const env::EnvironmentTimeline& timeline =
      manager_->channel().environment_timeline();
  // Recalibration cost accrues only on drift-triggered re-solves, so a
  // constant timeline (and the chip_activity alias) never pays it.
  const core::RecalibrationConfig& recal_config = config_.recalibration;

  // Per-phase accumulators over the timeline's phase windows.
  std::vector<env::EnvironmentTimeline::PhaseWindow> windows;
  std::vector<math::RunningStats> phase_latency;
  std::vector<NocPhaseStats> phase_stats;
  if (has_env) {
    windows = timeline.phase_windows(horizon_s);
    phase_latency.resize(windows.size());
    phase_stats.resize(windows.size());
    for (std::size_t i = 0; i < windows.size(); ++i) {
      phase_stats[i].label = windows[i].label;
      phase_stats[i].start_s = windows[i].start_s;
      phase_stats[i].end_s = windows[i].end_s;
    }
  }
  // Partition messages per destination channel (channels are
  // independent: every reader owns its waveguides and wavelengths).
  std::vector<std::vector<Message>> per_channel(config_.oni_count);
  for (auto& m : schedule) {
    if (m.destination >= config_.oni_count || m.source >= config_.oni_count)
      throw std::invalid_argument("NocSimulator::run: ONI out of range");
    if (m.source == m.destination)
      throw std::invalid_argument("NocSimulator::run: self loop message");
    per_channel[m.destination].push_back(std::move(m));
  }

  std::vector<double> latencies;
  std::map<TrafficClass, math::RunningStats> class_latency;
  // Baseline (t = 0) feasibility per request, for classifying drops as
  // thermal: lazily solved, cached by request.
  std::vector<std::pair<core::CommunicationRequest, bool>>
      baseline_feasibility;
  const auto baseline_feasible = [&](const core::CommunicationRequest& r) {
    for (const auto& [request, feasible] : baseline_feasibility)
      if (request == r) return feasible;
    const bool feasible = manager_->configure(r).has_value();
    baseline_feasibility.emplace_back(r, feasible);
    return feasible;
  };

  // Every reader channel runs through the shared channel engine with
  // one sink: this simulator's aggregate.  Channels run in ONI order,
  // so the aggregate accumulates message by message exactly as the
  // original single-loop implementation did.
  ChannelParams params;
  params.queue_count = config_.oni_count;
  params.wavelengths = nw;
  params.f_mod_hz = f_mod;
  params.laser_gating = config_.laser_gating;
  params.laser_wake_s = config_.laser_wake_s;
  params.arbitration_s = config_.arbitration_s;
  params.flight_time_s = config_.flight_time_s;
  params.horizon_s = horizon_s;
  params.keep_log = keep_log;
  params.has_env = has_env;
  params.timeline = &timeline;
  params.windows = &windows;
  params.recalibration = recal_config;
  params.class_requirements = &config_.class_requirements;
  params.default_requirements = &config_.default_requirements;

  ChannelSink sink;
  sink.stats = &result.stats;
  sink.latencies = &latencies;
  sink.class_latency = &class_latency;
  sink.total_payload_bits = &result.total_payload_bits;
  sink.log = keep_log ? &result.log : nullptr;
  sink.phase_stats = has_env ? &phase_stats : nullptr;
  sink.phase_latency = has_env ? &phase_latency : nullptr;

  for (std::size_t ch = 0; ch < config_.oni_count; ++ch) {
    params.channel_index = ch;
    run_channel(per_channel[ch], params, manager_, baseline_feasible, {sink});
  }

  finalize_stats(result.stats, latencies, class_latency,
                 has_env ? &phase_stats : nullptr,
                 has_env ? &phase_latency : nullptr);
  return result;
}

}  // namespace photecc::noc
