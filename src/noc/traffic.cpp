#include "photecc/noc/traffic.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace photecc::noc {
namespace {

std::string class_name(TrafficClass cls) {
  switch (cls) {
    case TrafficClass::kRealTime: return "real-time";
    case TrafficClass::kMultimedia: return "multimedia";
    case TrafficClass::kBestEffort: return "best-effort";
  }
  throw std::logic_error("class_name: bad TrafficClass");
}

double exponential(double rate, math::Xoshiro256& rng) {
  // Inverse-CDF sampling; uniform01 is in [0, 1) so 1-u is in (0, 1].
  return -std::log(1.0 - rng.uniform01()) / rate;
}

void sort_by_time(std::vector<Message>& messages) {
  std::stable_sort(messages.begin(), messages.end(),
                   [](const Message& a, const Message& b) {
                     return a.creation_time_s < b.creation_time_s;
                   });
}

}  // namespace

std::string to_string(TrafficClass cls) { return class_name(cls); }

// ---------------------------------------------------------------------
// UniformRandomTraffic
// ---------------------------------------------------------------------

UniformRandomTraffic::UniformRandomTraffic(std::size_t tile_count,
                                           double rate_msgs_per_s,
                                           std::uint64_t payload_bits,
                                           TrafficClass cls,
                                           double target_ber)
    : tile_count_(tile_count),
      rate_(rate_msgs_per_s),
      payload_bits_(payload_bits),
      class_(cls),
      target_ber_(target_ber) {
  if (tile_count < 2)
    throw std::invalid_argument("UniformRandomTraffic: need >= 2 tiles");
  if (rate_msgs_per_s <= 0.0 || payload_bits == 0)
    throw std::invalid_argument("UniformRandomTraffic: bad rate/payload");
}

std::vector<Message> UniformRandomTraffic::generate(
    double horizon_s, std::uint64_t seed) const {
  math::Xoshiro256 rng(seed);
  std::vector<Message> out;
  double t = exponential(rate_, rng);
  std::uint64_t id = 0;
  while (t < horizon_s) {
    Message m;
    m.id = id++;
    m.creation_time_s = t;
    m.source = rng.bounded(tile_count_);
    do {
      m.destination = rng.bounded(tile_count_);
    } while (m.destination == m.source);
    m.payload_bits = payload_bits_;
    m.traffic_class = class_;
    out.push_back(m);
    t += exponential(rate_, rng);
  }
  return out;
}

// ---------------------------------------------------------------------
// HotspotTraffic
// ---------------------------------------------------------------------

HotspotTraffic::HotspotTraffic(std::size_t tile_count, double rate_msgs_per_s,
                               std::uint64_t payload_bits,
                               std::size_t hotspot, double hotspot_fraction)
    : tile_count_(tile_count),
      rate_(rate_msgs_per_s),
      payload_bits_(payload_bits),
      hotspot_(hotspot),
      hotspot_fraction_(hotspot_fraction) {
  if (tile_count < 2)
    throw std::invalid_argument("HotspotTraffic: need >= 2 tiles");
  if (hotspot >= tile_count)
    throw std::invalid_argument("HotspotTraffic: hotspot out of range");
  if (hotspot_fraction < 0.0 || hotspot_fraction > 1.0)
    throw std::invalid_argument("HotspotTraffic: fraction outside [0, 1]");
  if (rate_msgs_per_s <= 0.0 || payload_bits == 0)
    throw std::invalid_argument("HotspotTraffic: bad rate/payload");
}

std::vector<Message> HotspotTraffic::generate(double horizon_s,
                                              std::uint64_t seed) const {
  math::Xoshiro256 rng(seed);
  std::vector<Message> out;
  double t = exponential(rate_, rng);
  std::uint64_t id = 0;
  while (t < horizon_s) {
    Message m;
    m.id = id++;
    m.creation_time_s = t;
    if (rng.bernoulli(hotspot_fraction_)) {
      m.destination = hotspot_;
      do {
        m.source = rng.bounded(tile_count_);
      } while (m.source == hotspot_);
    } else {
      m.source = rng.bounded(tile_count_);
      do {
        m.destination = rng.bounded(tile_count_);
      } while (m.destination == m.source);
    }
    m.payload_bits = payload_bits_;
    m.traffic_class = TrafficClass::kBestEffort;
    out.push_back(m);
    t += exponential(rate_, rng);
  }
  return out;
}

// ---------------------------------------------------------------------
// StreamingTraffic
// ---------------------------------------------------------------------

StreamingTraffic::StreamingTraffic(std::vector<Stream> streams)
    : streams_(std::move(streams)) {
  if (streams_.empty())
    throw std::invalid_argument("StreamingTraffic: no streams");
  for (const auto& s : streams_) {
    if (s.period_s <= 0.0 || s.frame_bits == 0 ||
        s.deadline_fraction <= 0.0)
      throw std::invalid_argument("StreamingTraffic: bad stream");
    if (s.source == s.destination)
      throw std::invalid_argument("StreamingTraffic: self loop");
  }
}

std::vector<Message> StreamingTraffic::generate(double horizon_s,
                                                std::uint64_t seed) const {
  (void)seed;  // periodic schedule is deterministic
  std::vector<Message> out;
  std::uint64_t id = 0;
  for (const auto& s : streams_) {
    // Frame times are computed as i * period, NOT accumulated with
    // t += period: the accumulated rounding error grows with the frame
    // index and drops or duplicates frames near the horizon on long
    // runs.  A frame within 1 part in 1e12 of the horizon counts as AT
    // the horizon (excluded): when the horizon is a decimal multiple
    // of the period, i * period can round to just under it.
    for (std::uint64_t i = 0;; ++i) {
      const double t = static_cast<double>(i) * s.period_s;
      if (t >= horizon_s * (1.0 - 1e-12)) break;
      Message m;
      m.id = id++;
      m.creation_time_s = t;
      m.source = s.source;
      m.destination = s.destination;
      m.payload_bits = s.frame_bits;
      m.traffic_class = s.cls;
      m.deadline_s = t + s.deadline_fraction * s.period_s;
      out.push_back(m);
    }
  }
  sort_by_time(out);
  return out;
}

// ---------------------------------------------------------------------
// PhaseTraceTraffic
// ---------------------------------------------------------------------

PhaseTraceTraffic::PhaseTraceTraffic(std::vector<Phase> phases)
    : phases_(std::move(phases)) {
  if (phases_.empty())
    throw std::invalid_argument("PhaseTraceTraffic: no phases");
  for (const auto& p : phases_) {
    if (p.duration_s <= 0.0 || !p.generator)
      throw std::invalid_argument("PhaseTraceTraffic: bad phase");
  }
}

std::vector<Message> PhaseTraceTraffic::generate(double horizon_s,
                                                 std::uint64_t seed) const {
  std::vector<Message> out;
  double phase_start = 0.0;
  std::size_t phase_index = 0;
  while (phase_start < horizon_s) {
    const Phase& phase = phases_[phase_index % phases_.size()];
    const double span = std::min(phase.duration_s, horizon_s - phase_start);
    // Sub-seeds go through the splitmix64 mixer, not seed+1, seed+2,
    // ...: arithmetic neighbours collide with sibling composites
    // (another generator handed seed+1 would replay this trace's
    // phases) — see the seed-derivation contract in traffic.hpp.
    auto chunk = phase.generator->generate(
        span, math::derive_seed(seed, phase_index));
    for (auto& m : chunk) {
      m.creation_time_s += phase_start;
      if (m.deadline_s) *m.deadline_s += phase_start;
      out.push_back(m);
    }
    phase_start += phase.duration_s;
    ++phase_index;
  }
  sort_by_time(out);
  // Re-number to keep ids unique after merging.
  for (std::size_t i = 0; i < out.size(); ++i) out[i].id = i;
  return out;
}

// ---------------------------------------------------------------------
// TraceTraffic
// ---------------------------------------------------------------------

namespace {

TrafficClass parse_class(const std::string& token, const std::string& origin,
                         std::size_t line) {
  if (token == "rt" || token == "real-time") return TrafficClass::kRealTime;
  if (token == "mm" || token == "multimedia") return TrafficClass::kMultimedia;
  if (token == "be" || token == "best-effort") return TrafficClass::kBestEffort;
  throw std::invalid_argument("TraceTraffic: " + origin + ":" +
                              std::to_string(line) + ": unknown class '" +
                              token + "'");
}

}  // namespace

TraceTraffic TraceTraffic::parse(std::istream& in, const std::string& origin) {
  std::vector<Message> messages;
  std::string line;
  std::size_t line_number = 0;
  const auto fail = [&](const std::string& what) -> std::invalid_argument {
    return std::invalid_argument("TraceTraffic: " + origin + ":" +
                                 std::to_string(line_number) + ": " + what);
  };
  while (std::getline(in, line)) {
    ++line_number;
    const std::size_t comment = line.find('#');
    if (comment != std::string::npos) line.erase(comment);
    std::istringstream fields(line);
    double time_s = 0.0;
    if (!(fields >> time_s)) continue;  // blank / comment-only line
    Message m;
    m.creation_time_s = time_s;
    std::uint64_t payload = 0;
    if (!(fields >> m.source >> m.destination >> payload))
      throw fail("expected <time_s> <source> <destination> <payload_bits>");
    m.payload_bits = payload;
    if (time_s < 0.0) throw fail("negative time");
    if (m.source == m.destination) throw fail("self loop message");
    if (payload == 0) throw fail("zero payload");
    std::string cls;
    if (fields >> cls) {
      m.traffic_class = parse_class(cls, origin, line_number);
      double deadline_s = 0.0;
      if (fields >> deadline_s) m.deadline_s = deadline_s;
    }
    std::string extra;
    if (fields >> extra) throw fail("trailing field '" + extra + "'");
    messages.push_back(m);
  }
  return TraceTraffic(std::move(messages));
}

TraceTraffic TraceTraffic::from_file(const std::string& path) {
  std::ifstream file(path);
  if (!file.good())
    throw std::runtime_error("TraceTraffic: cannot read " + path);
  return parse(file, path);
}

TraceTraffic::TraceTraffic(std::vector<Message> messages)
    : messages_(std::move(messages)) {
  sort_by_time(messages_);
  for (std::size_t i = 0; i < messages_.size(); ++i) messages_[i].id = i;
}

std::vector<Message> TraceTraffic::generate(double horizon_s,
                                            std::uint64_t seed) const {
  (void)seed;  // a recorded timeline replays deterministically
  std::vector<Message> out;
  for (const Message& m : messages_) {
    if (m.creation_time_s >= horizon_s) break;  // sorted: nothing later fits
    out.push_back(m);
  }
  return out;
}

// ---------------------------------------------------------------------
// MixedTraffic
// ---------------------------------------------------------------------

MixedTraffic::MixedTraffic(
    std::vector<std::shared_ptr<const TrafficGenerator>> parts)
    : parts_(std::move(parts)) {
  if (parts_.empty()) throw std::invalid_argument("MixedTraffic: empty");
  for (const auto& p : parts_)
    if (!p) throw std::invalid_argument("MixedTraffic: null generator");
}

std::vector<Message> MixedTraffic::generate(double horizon_s,
                                            std::uint64_t seed) const {
  std::vector<Message> out;
  for (std::size_t part_index = 0; part_index < parts_.size();
       ++part_index) {
    auto chunk = parts_[part_index]->generate(
        horizon_s, math::derive_seed(seed, part_index));
    out.insert(out.end(), chunk.begin(), chunk.end());
  }
  sort_by_time(out);
  for (std::size_t i = 0; i < out.size(); ++i) out[i].id = i;
  return out;
}

}  // namespace photecc::noc
