#include "photecc/explore/result.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <sstream>

#include "photecc/explore/scenario.hpp"
#include "photecc/math/json.hpp"

namespace photecc::explore {

void CellResult::set_metric(const std::string& name, double value) {
  for (auto& [existing, v] : metrics) {
    if (existing == name) {
      v = value;
      return;
    }
  }
  metrics.emplace_back(name, value);
}

std::optional<double> CellResult::metric(const std::string& name) const {
  for (const auto& [existing, v] : metrics)
    if (existing == name) return v;
  return std::nullopt;
}

std::optional<std::string> CellResult::label(const std::string& axis) const {
  return find_label(labels, axis);
}

namespace {

/// Objective values of a cell, or nullopt when any metric is missing
/// (such a cell never dominates and is dominated by every feasible one).
std::optional<std::vector<double>> objective_values(
    const CellResult& cell, const std::vector<Objective>& objectives) {
  if (!cell.feasible) return std::nullopt;
  std::vector<double> values;
  values.reserve(objectives.size());
  for (const auto& objective : objectives) {
    const auto v = cell.metric(objective.metric);
    if (!v || !std::isfinite(*v)) return std::nullopt;
    // Normalise to minimisation so the comparison below is uniform.
    values.push_back(objective.minimize ? *v : -*v);
  }
  return values;
}

/// b dominates a: no worse on every (minimisation-normalised) objective
/// and strictly better on at least one.
bool dominates(const std::vector<double>& b, const std::vector<double>& a) {
  bool no_worse = true;
  bool strictly_better = false;
  for (std::size_t k = 0; k < b.size(); ++k) {
    if (b[k] > a[k]) no_worse = false;
    if (b[k] < a[k]) strictly_better = true;
  }
  return no_worse && strictly_better;
}

}  // namespace

bool is_dominated(const CellResult& a, const CellResult& b,
                  const std::vector<Objective>& objectives) {
  const auto vb = objective_values(b, objectives);
  if (!vb) return false;
  const auto va = objective_values(a, objectives);
  if (!va) return true;
  return dominates(*vb, *va);
}

std::vector<std::size_t> pareto_front_indices(
    const std::vector<CellResult>& cells,
    const std::vector<Objective>& objectives) {
  // Derive each cell's objective vector once up front; the O(n^2)
  // dominance loop then compares plain doubles instead of re-scanning
  // string-keyed metric lists.
  std::vector<std::optional<std::vector<double>>> values;
  values.reserve(cells.size());
  for (const auto& cell : cells)
    values.push_back(objective_values(cell, objectives));

  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (!values[i]) continue;
    bool dominated = false;
    for (std::size_t j = 0; j < cells.size() && !dominated; ++j) {
      if (j != i && values[j] && dominates(*values[j], *values[i]))
        dominated = true;
    }
    if (!dominated) front.push_back(i);
  }
  std::sort(front.begin(), front.end(), [&](std::size_t lhs, std::size_t rhs) {
    for (std::size_t k = 0; k < objectives.size(); ++k) {
      if ((*values[lhs])[k] != (*values[rhs])[k])
        return (*values[lhs])[k] < (*values[rhs])[k];
    }
    return lhs < rhs;
  });
  return front;
}

std::vector<std::size_t> ExperimentResult::pareto_front(
    const std::vector<Objective>& objectives) const {
  return pareto_front_indices(cells, objectives);
}

double SweepStats::warm_hit_rate() const {
  return cells ? static_cast<double>(warm_reuses) /
                     static_cast<double>(cells)
               : 0.0;
}

double SweepStats::cells_per_second() const {
  return execute_time_s > 0.0
             ? static_cast<double>(cells) / execute_time_s
             : 0.0;
}

void SweepStats::merge(const SweepStats& other) {
  cells += other.cells;
  channels_lowered += other.channels_lowered;
  root_solves += other.root_solves;
  solver_iterations += other.solver_iterations;
  warm_reuses += other.warm_reuses;
  lower_time_s += other.lower_time_s;
  execute_time_s += other.execute_time_s;
}

SweepStats SweepStats::as_replay() const {
  SweepStats replay;
  replay.cells = cells;
  return replay;
}

std::string SweepStats::json() const {
  std::ostringstream os;
  os << "{\"cells\":" << cells
     << ",\"channels_lowered\":" << channels_lowered
     << ",\"root_solves\":" << root_solves
     << ",\"solver_iterations\":" << solver_iterations
     << ",\"warm_reuses\":" << warm_reuses
     << ",\"warm_hit_rate\":" << math::json::number(warm_hit_rate())
     << ",\"lower_time_s\":" << math::json::number(lower_time_s)
     << ",\"execute_time_s\":" << math::json::number(execute_time_s)
     << ",\"cells_per_second\":" << math::json::number(cells_per_second())
     << "}";
  return os.str();
}

namespace {

/// Shortest round-trip double formatting (std::to_chars): deterministic
/// across runs and thread counts, precise enough to reparse exactly.
std::string format_double(double value) {
  char buffer[64];
  const auto [ptr, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  return ec == std::errc{} ? std::string(buffer, ptr) : std::string("nan");
}

/// RFC-4180 minimal quoting.
std::string csv_field(const std::string& raw) {
  if (raw.find_first_of(",\"\n") == std::string::npos) return raw;
  std::string quoted = "\"";
  for (const char c : raw) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

/// First-seen-order union of (axis | metric) names over all cells.
template <typename Pairs, typename Proj>
std::vector<std::string> column_union(const Pairs& cells, Proj proj) {
  std::vector<std::string> columns;
  for (const auto& cell : cells) {
    for (const auto& [name, value] : proj(cell)) {
      (void)value;
      if (std::find(columns.begin(), columns.end(), name) == columns.end())
        columns.push_back(name);
    }
  }
  return columns;
}

}  // namespace

void ExperimentResult::write_csv(std::ostream& os) const {
  const auto axes =
      column_union(cells, [](const CellResult& c) { return c.labels; });
  const auto metric_names =
      column_union(cells, [](const CellResult& c) { return c.metrics; });

  os << "index";
  for (const auto& axis : axes) os << ',' << csv_field(axis);
  os << ",feasible";
  for (const auto& name : metric_names) os << ',' << csv_field(name);
  os << '\n';

  for (const auto& cell : cells) {
    os << cell.index;
    for (const auto& axis : axes) {
      os << ',';
      if (const auto v = cell.label(axis)) os << csv_field(*v);
    }
    os << ',' << (cell.feasible ? '1' : '0');
    for (const auto& name : metric_names) {
      os << ',';
      if (const auto v = cell.metric(name)) os << format_double(*v);
    }
    os << '\n';
  }
}

std::string ExperimentResult::csv() const {
  std::ostringstream os;
  write_csv(os);
  return os.str();
}

void write_cell_json(std::ostream& os, const CellResult& cell) {
  os << "{\"index\":" << cell.index << ",\"labels\":{";
  for (std::size_t k = 0; k < cell.labels.size(); ++k) {
    if (k) os << ',';
    os << math::json::escape(cell.labels[k].first) << ':'
       << math::json::escape(cell.labels[k].second);
  }
  os << "},\"feasible\":" << (cell.feasible ? "true" : "false")
     << ",\"metrics\":{";
  for (std::size_t k = 0; k < cell.metrics.size(); ++k) {
    if (k) os << ',';
    os << math::json::escape(cell.metrics[k].first) << ':'
       << math::json::number(cell.metrics[k].second);
  }
  os << "}}";
}

void ExperimentResult::write_json(std::ostream& os) const {
  os << "{\"cells\":[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) os << ',';
    os << "\n  ";
    write_cell_json(os, cells[i]);
  }
  os << "\n]}\n";
}

std::string ExperimentResult::json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

core::TradeoffSweep ExperimentResult::to_tradeoff_sweep() const {
  core::TradeoffSweep sweep;
  sweep.points.reserve(cells.size());
  for (const auto& cell : cells)
    if (cell.scheme) sweep.points.push_back(*cell.scheme);
  return sweep;
}

}  // namespace photecc::explore
