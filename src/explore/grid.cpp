#include "photecc/explore/grid.hpp"

#include <stdexcept>

#include "photecc/cooling/cooling_code.hpp"
#include "photecc/math/rng.hpp"
#include "photecc/math/table.hpp"

namespace photecc::explore {

TrafficSpec uniform_traffic(double rate_msgs_per_s,
                            std::uint64_t payload_bits) {
  TrafficSpec spec;
  spec.label = "uniform@" + math::format_sci(rate_msgs_per_s, 1);
  spec.kind = TrafficSpec::Kind::kUniform;
  spec.rate_msgs_per_s = rate_msgs_per_s;
  spec.payload_bits = payload_bits;
  return spec;
}

TrafficSpec hotspot_traffic(double rate_msgs_per_s, std::size_t hotspot,
                            double hotspot_fraction,
                            std::uint64_t payload_bits) {
  TrafficSpec spec;
  spec.label = "hotspot" + std::to_string(hotspot) + "@" +
               math::format_sci(rate_msgs_per_s, 1);
  spec.kind = TrafficSpec::Kind::kHotspot;
  spec.rate_msgs_per_s = rate_msgs_per_s;
  spec.payload_bits = payload_bits;
  spec.hotspot = hotspot;
  spec.hotspot_fraction = hotspot_fraction;
  return spec;
}

TrafficSpec trace_traffic(std::string path) {
  TrafficSpec spec;
  spec.label = "trace@" + path;
  spec.kind = TrafficSpec::Kind::kTrace;
  spec.trace_path = std::move(path);
  return spec;
}

ScenarioGrid& ScenarioGrid::codes(std::vector<std::string> names) {
  codes_ = std::move(names);
  return *this;
}

ScenarioGrid& ScenarioGrid::cooling_weights(
    std::vector<std::size_t> weights) {
  cooling_weights_ = std::move(weights);
  return *this;
}

ScenarioGrid& ScenarioGrid::ber_targets(std::vector<double> bers) {
  bers_ = std::move(bers);
  return *this;
}

ScenarioGrid& ScenarioGrid::link_variants(std::vector<LinkVariant> variants) {
  link_variants_ = std::move(variants);
  return *this;
}

ScenarioGrid& ScenarioGrid::oni_counts(std::vector<std::size_t> counts) {
  oni_counts_ = std::move(counts);
  return *this;
}

ScenarioGrid& ScenarioGrid::traffic_patterns(std::vector<TrafficSpec> specs) {
  traffic_ = std::move(specs);
  return *this;
}

ScenarioGrid& ScenarioGrid::laser_gating(std::vector<bool> values) {
  gating_ = std::move(values);
  return *this;
}

ScenarioGrid& ScenarioGrid::policies(std::vector<core::Policy> values) {
  policies_ = std::move(values);
  return *this;
}

ScenarioGrid& ScenarioGrid::modulations(
    std::vector<math::Modulation> values) {
  modulations_ = std::move(values);
  return *this;
}

ScenarioGrid& ScenarioGrid::environments(
    std::vector<EnvironmentVariant> variants) {
  environments_ = std::move(variants);
  return *this;
}

ScenarioGrid& ScenarioGrid::base_link(link::MwsrParams params) {
  base_link_ = std::move(params);
  return *this;
}

ScenarioGrid& ScenarioGrid::base_system(core::SystemConfig config) {
  base_system_ = std::move(config);
  return *this;
}

ScenarioGrid& ScenarioGrid::base_seed(std::uint64_t seed) {
  base_seed_ = seed;
  return *this;
}

ScenarioGrid& ScenarioGrid::noc_horizon(double horizon_s) {
  noc_horizon_s_ = horizon_s;
  return *this;
}

ScenarioGrid& ScenarioGrid::network(NetworkSpec spec) {
  network_ = std::move(spec);
  return *this;
}

namespace {

/// Length an axis contributes to the mixed radix (1 when undeclared).
std::size_t radix(std::size_t axis_length) {
  return axis_length ? axis_length : 1;
}

}  // namespace

std::size_t ScenarioGrid::size() const {
  return radix(codes_.size()) * radix(cooling_weights_.size()) *
         radix(bers_.size()) *
         radix(link_variants_.size()) * radix(oni_counts_.size()) *
         radix(traffic_.size()) * radix(gating_.size()) *
         radix(policies_.size()) * radix(modulations_.size()) *
         radix(environments_.size());
}

bool ScenarioGrid::has_noc_axes() const {
  return !traffic_.empty() || !gating_.empty() || !policies_.empty();
}

Scenario ScenarioGrid::at(std::size_t i) const {
  if (i >= size())
    throw std::out_of_range("ScenarioGrid::at: index " + std::to_string(i) +
                            " >= size " + std::to_string(size()));
  Scenario s;
  s.index = i;
  s.link = base_link_;
  s.system = base_system_;
  s.network = network_;
  s.noc_horizon_s = noc_horizon_s_;

  // Deterministic per-cell seed: the shared splitmix64 mixer over the
  // base seed and the cell index, so cell seeds do not depend on
  // evaluation order or thread count.
  s.seed = math::derive_seed(base_seed_, i);

  // Mixed-radix decode, innermost (fastest-varying) axis first.  The
  // label list is built in the same canonical order.
  std::size_t rem = i;
  const auto digit = [&rem](std::size_t axis_length) {
    const std::size_t r = radix(axis_length);
    const std::size_t d = rem % r;
    rem /= r;
    return d;
  };

  if (const std::size_t d = digit(codes_.size()); !codes_.empty()) {
    s.code = codes_[d];
    s.labels.emplace_back("code", *s.code);
  }
  if (const std::size_t d = digit(cooling_weights_.size());
      !cooling_weights_.empty()) {
    // The code label above keeps the base name; the wrap shows up in
    // the cooling label and in the scheme column of the cell result.
    const std::size_t w = cooling_weights_[d];
    s.cooling_weight = w;
    if (w > 0)
      s.code = cooling::cooling_name(s.code.value_or("w/o ECC"), w);
    s.labels.emplace_back("cooling",
                          w == 0 ? "off" : "w" + std::to_string(w));
  }
  if (const std::size_t d = digit(bers_.size()); !bers_.empty()) {
    s.target_ber = bers_[d];
    s.labels.emplace_back("target_ber", math::format_sci(s.target_ber, 0));
  }
  if (const std::size_t d = digit(link_variants_.size());
      !link_variants_.empty()) {
    s.link = link_variants_[d].second;
    s.labels.emplace_back("link", link_variants_[d].first);
  }
  if (const std::size_t d = digit(oni_counts_.size()); !oni_counts_.empty()) {
    s.link.oni_count = oni_counts_[d];
    s.system.oni_count = oni_counts_[d];
    s.labels.emplace_back("oni_count", std::to_string(oni_counts_[d]));
  }
  if (const std::size_t d = digit(traffic_.size()); !traffic_.empty()) {
    s.traffic = traffic_[d];
    s.labels.emplace_back("traffic", traffic_[d].label);
  }
  if (const std::size_t d = digit(gating_.size()); !gating_.empty()) {
    s.laser_gating = gating_[d];
    s.labels.emplace_back("laser_gating", s.laser_gating ? "on" : "off");
  }
  if (const std::size_t d = digit(policies_.size()); !policies_.empty()) {
    s.policy = policies_[d];
    s.labels.emplace_back("policy", core::to_string(s.policy));
  }
  if (const std::size_t d = digit(modulations_.size());
      !modulations_.empty()) {
    s.link.modulation = modulations_[d];
    s.labels.emplace_back("modulation",
                          math::to_string(s.link.modulation));
  }
  if (const std::size_t d = digit(environments_.size());
      !environments_.empty()) {
    s.link.environment = environments_[d].second;
    s.labels.emplace_back("environment", environments_[d].first);
  }
  return s;
}

}  // namespace photecc::explore
