// Declarative design-space grid: compose axes (code, BER target, link
// variant, ONI count, traffic, laser gating, policy, modulation,
// environment) and get a lazily enumerated cartesian product of
// Scenario cells.
//
// Enumeration order is fixed and documented: the code axis varies
// fastest, then cooling weight, BER, link variant, ONI count, traffic,
// gating, policy, modulation, environment.  A grid with only
// {codes, ber_targets}
// therefore enumerates in exactly the order of the historical
// core::sweep_tradeoff loops (BER-major, code-minor), which is what
// lets the refactored benches reproduce byte-identical tables; the
// modulation and environment axes are outermost so declaring them
// appends whole-grid repeats after the base cells instead of
// interleaving them.
#ifndef PHOTECC_EXPLORE_GRID_HPP
#define PHOTECC_EXPLORE_GRID_HPP

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "photecc/explore/scenario.hpp"

namespace photecc::explore {

/// A labelled MwsrParams variant for the link-parameter axis.
using LinkVariant = std::pair<std::string, link::MwsrParams>;

/// A labelled environment timeline for the environment axis.
using EnvironmentVariant = std::pair<std::string, env::EnvironmentTimeline>;

class ScenarioGrid {
 public:
  // --- Axes (fluent setters; an unset axis contributes the base value
  // and no label).  Passing an empty vector clears the axis. ---
  ScenarioGrid& codes(std::vector<std::string> names);
  /// Cooling axis (between code and BER): each weight w > 0 wraps the
  /// cell's code into COOL(<code>, w) — the enumerative weight-bounding
  /// outer code of photecc::cooling — and 0 leaves the plain code
  /// ("cooling off", the comparison baseline).  Declaring the axis also
  /// switches on the cooling metric columns (duty_bound,
  /// thermal_headroom_w) in every evaluator.
  ScenarioGrid& cooling_weights(std::vector<std::size_t> weights);
  ScenarioGrid& ber_targets(std::vector<double> bers);
  ScenarioGrid& link_variants(std::vector<LinkVariant> variants);
  ScenarioGrid& oni_counts(std::vector<std::size_t> counts);
  ScenarioGrid& traffic_patterns(std::vector<TrafficSpec> specs);
  ScenarioGrid& laser_gating(std::vector<bool> values);
  ScenarioGrid& policies(std::vector<core::Policy> values);
  ScenarioGrid& modulations(std::vector<math::Modulation> values);
  /// Environment axis (outermost): each value overrides the cell's
  /// link.environment timeline.  Undeclared = the base link's
  /// environment (the static chip-activity alias by default).
  ScenarioGrid& environments(std::vector<EnvironmentVariant> variants);

  // --- Base values applied to every cell before axis overrides. ---
  ScenarioGrid& base_link(link::MwsrParams params);
  ScenarioGrid& base_system(core::SystemConfig config);
  ScenarioGrid& base_seed(std::uint64_t seed);
  ScenarioGrid& noc_horizon(double horizon_s);
  /// Tiled-network configuration applied to every cell (not an axis:
  /// the topology and per-channel assignment are fixed while the
  /// declared axes sweep).  Routes the grid to the network evaluator.
  ScenarioGrid& network(NetworkSpec spec);

  // --- Axis inspection (read-only views used by the lowered-plan
  // compiler; an empty vector means the axis is undeclared and every
  // cell takes the base value). ---
  [[nodiscard]] const std::vector<std::string>& code_axis() const noexcept {
    return codes_;
  }
  [[nodiscard]] const std::vector<std::size_t>& cooling_axis()
      const noexcept {
    return cooling_weights_;
  }
  [[nodiscard]] const std::vector<double>& ber_axis() const noexcept {
    return bers_;
  }
  [[nodiscard]] const std::vector<LinkVariant>& link_variant_axis()
      const noexcept {
    return link_variants_;
  }
  [[nodiscard]] const std::vector<std::size_t>& oni_axis() const noexcept {
    return oni_counts_;
  }
  [[nodiscard]] const std::vector<math::Modulation>& modulation_axis()
      const noexcept {
    return modulations_;
  }
  [[nodiscard]] const std::vector<EnvironmentVariant>& environment_axis()
      const noexcept {
    return environments_;
  }
  [[nodiscard]] const link::MwsrParams& base_link_params() const noexcept {
    return base_link_;
  }
  [[nodiscard]] const core::SystemConfig& base_system_config()
      const noexcept {
    return base_system_;
  }

  /// Number of cells: the product of the declared axis lengths (1 when
  /// no axis is declared — the grid still holds the single base cell).
  [[nodiscard]] std::size_t size() const;

  /// True when any NoC-only axis (traffic, gating, policy) is declared.
  [[nodiscard]] bool has_noc_axes() const;

  /// True when a tiled-network configuration is declared.
  [[nodiscard]] bool has_network() const noexcept {
    return network_.has_value();
  }
  [[nodiscard]] const std::optional<NetworkSpec>& network_spec()
      const noexcept {
    return network_;
  }

  /// Materialises cell `i` (mixed-radix decode of the axis indices).
  /// Throws std::out_of_range for i >= size().
  [[nodiscard]] Scenario at(std::size_t i) const;

  /// Lazy input iterator over all cells in enumeration order.
  class const_iterator {
   public:
    using iterator_category = std::input_iterator_tag;
    using value_type = Scenario;
    using difference_type = std::ptrdiff_t;
    using pointer = const Scenario*;
    using reference = Scenario;

    const_iterator(const ScenarioGrid* grid, std::size_t index)
        : grid_(grid), index_(index) {}

    [[nodiscard]] Scenario operator*() const { return grid_->at(index_); }
    const_iterator& operator++() {
      ++index_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator copy = *this;
      ++index_;
      return copy;
    }
    [[nodiscard]] bool operator==(const const_iterator& other) const {
      return grid_ == other.grid_ && index_ == other.index_;
    }
    [[nodiscard]] bool operator!=(const const_iterator& other) const {
      return !(*this == other);
    }

   private:
    const ScenarioGrid* grid_;
    std::size_t index_;
  };

  [[nodiscard]] const_iterator begin() const { return {this, 0}; }
  [[nodiscard]] const_iterator end() const { return {this, size()}; }

 private:
  std::vector<std::string> codes_;
  std::vector<std::size_t> cooling_weights_;
  std::vector<double> bers_;
  std::vector<LinkVariant> link_variants_;
  std::vector<std::size_t> oni_counts_;
  std::vector<TrafficSpec> traffic_;
  std::vector<bool> gating_;
  std::vector<core::Policy> policies_;
  std::vector<math::Modulation> modulations_;
  std::vector<EnvironmentVariant> environments_;

  link::MwsrParams base_link_{};
  core::SystemConfig base_system_{};
  std::optional<NetworkSpec> network_;
  std::uint64_t base_seed_ = 0x9e3779b97f4a7c15ULL;
  double noc_horizon_s_ = 2e-6;
};

}  // namespace photecc::explore

#endif  // PHOTECC_EXPLORE_GRID_HPP
