// Built-in cell evaluators: the analytic link-level evaluation (the
// paper's Fig. 5/6 machinery) and the dynamic NoC simulation.  Both are
// pure functions of the Scenario — no shared mutable state — so the
// runner may call them from any thread.
#ifndef PHOTECC_EXPLORE_EVALUATORS_HPP
#define PHOTECC_EXPLORE_EVALUATORS_HPP

#include "photecc/explore/result.hpp"
#include "photecc/explore/scenario.hpp"

namespace photecc::explore {

/// The paper's three schemes in presentation order — the code-axis twin
/// of ecc::paper_schemes().
[[nodiscard]] const std::vector<std::string>& paper_scheme_names();

/// The paper's Fig. 6b objective pair on evaluate_link_cell's metric
/// names: minimise CT, minimise Pchannel.  Defined next to the metrics
/// so a metric rename cannot silently drift apart from the front
/// extraction.
[[nodiscard]] const std::vector<Objective>& fig6b_objectives();

/// The exact metric names evaluate_link_cell / evaluate_noc_cell
/// publish, in column order — the validation surface for objective
/// references (spec layer).  Defined next to the evaluators so a
/// metric rename cannot silently drift apart from the declared list
/// (locked by a test).
[[nodiscard]] const std::vector<std::string>& link_cell_metric_names();
[[nodiscard]] const std::vector<std::string>& noc_cell_metric_names();

/// Extra metrics evaluate_noc_cell publishes *only* when the scenario
/// declares an environment timeline (appended after
/// noc_cell_metric_names(), in this order): dropped_thermal,
/// recalibrations, recalibration_energy_j, peak_activity,
/// final_activity.  Kept separate so environment-free grids stay
/// column-stable with their pre-environment exports.
[[nodiscard]] const std::vector<std::string>& noc_env_metric_names();

/// Per-channel metrics evaluate_network_cell publishes for every
/// channel k, as columns named "ch<k>_<metric>" (appended after the
/// aggregate columns): delivered, dropped, dropped_thermal,
/// mean_latency_s, p95_latency_s, total_energy_j, energy_per_bit_j,
/// recalibrations.
[[nodiscard]] const std::vector<std::string>& network_channel_metric_names();

/// Cooling-axis metrics, emitted *only* when the scenario declares the
/// cooling axis (Scenario::cooling_weight), so cooling-free grids stay
/// column-stable: evaluate_link_cell appends duty_bound and
/// thermal_headroom_w; the NoC/network evaluators append duty_bound
/// (the minimum over their scheme menu).
[[nodiscard]] const std::vector<std::string>& cooling_metric_names();

/// Analytic evaluation: core::evaluate_scheme on the scenario's channel.
/// Metrics: link_cell_metric_names() — ct, p_channel_w, p_laser_w,
/// p_mr_w, p_enc_dec_w, energy_per_bit_j, code_rate, op_laser_w, snr,
/// p_interconnect_w, total_loss_db.  Also fills CellResult::scheme for
/// the core bridges.
[[nodiscard]] CellResult evaluate_link_cell(const Scenario& scenario);

/// Dynamic evaluation: one NocSimulator::run seeded with the scenario's
/// deterministic seed.  The scheme menu is the scenario's single code
/// when the code axis is set, else the paper's adaptive three-scheme
/// menu.  Metrics: noc_cell_metric_names() — delivered, dropped,
/// deadline_misses, mean_latency_s, p95_latency_s, max_latency_s,
/// total_energy_j, laser_energy_j, idle_laser_energy_j,
/// energy_per_bit_j, busy_time_s.
[[nodiscard]] CellResult evaluate_noc_cell(const Scenario& scenario);

/// Tiled-network evaluation: one NetworkSimulator::run over the
/// scenario's NetworkSpec.  Aggregate metrics are the evaluate_noc_cell
/// set (env columns appended when the scenario or any channel declares
/// an environment), followed by "ch<k>_<metric>" columns per channel
/// (network_channel_metric_names()).  Falls back to evaluate_noc_cell
/// when the scenario has no NetworkSpec, so mixed grids stay
/// column-compatible.
[[nodiscard]] CellResult evaluate_network_cell(const Scenario& scenario);

}  // namespace photecc::explore

#endif  // PHOTECC_EXPLORE_EVALUATORS_HPP
