// Parallel sweep execution: evaluates every cell of a ScenarioGrid on a
// pool of worker threads pulling cells from a shared atomic queue
// (work-stealing), with results written into the slot of their cell
// index.  Combined with the grid's index-derived per-cell seeding, a
// run's ExperimentResult — and its CSV/JSON serialisation — is
// byte-identical for any thread count.
#ifndef PHOTECC_EXPLORE_RUNNER_HPP
#define PHOTECC_EXPLORE_RUNNER_HPP

#include <functional>

#include "photecc/explore/grid.hpp"
#include "photecc/explore/result.hpp"

namespace photecc::explore {

struct SweepOptions {
  /// Worker threads: 0 = math::default_thread_count() (hardware
  /// concurrency), 1 = sequential on the calling thread.
  std::size_t threads = 0;
};

class SweepRunner {
 public:
  using Evaluator = std::function<CellResult(const Scenario&)>;

  explicit SweepRunner(SweepOptions options = {}) : options_(options) {}

  /// Evaluates every cell of `grid` with `evaluate`.  The evaluator must
  /// be a pure function of the Scenario (the built-in ones are); it may
  /// be called concurrently from several threads.
  [[nodiscard]] ExperimentResult run(const ScenarioGrid& grid,
                                     const Evaluator& evaluate) const;

  /// Convenience: grids with a NetworkSpec run evaluate_network_cell
  /// per cell; NoC grids (traffic / gating / policy axes) run
  /// evaluate_noc_cell per cell; every other grid is compiled to an
  /// explore::LoweredPlan and executed on its batched hot path —
  /// byte-identical exports to the evaluate_link_cell path, with
  /// result.stats reporting the plan's counters.
  [[nodiscard]] ExperimentResult run(const ScenarioGrid& grid) const;

  [[nodiscard]] const SweepOptions& options() const noexcept {
    return options_;
  }

 private:
  SweepOptions options_;
};

}  // namespace photecc::explore

#endif  // PHOTECC_EXPLORE_RUNNER_HPP
