// Lowered sweep plans: the lower-once/execute-many hot path of the
// exploration engine.
//
// SweepRunner's legacy evaluator path re-derives every per-cell
// invariant from scratch: each cell builds an MwsrChannel (two O(NW^2)
// worst-channel scans — one in the solver, one in the link budget),
// re-runs the (code, target BER) code-model inversion (~45 Brent
// iterations) and re-formats its axis labels.  A LoweredPlan compiles a
// non-NoC ScenarioGrid once:
//
//   lower    - one channel + core::ChannelSweepPlan + link budget per
//              distinct (link variant, ONI count, modulation,
//              environment) combo; one shared (code, BER) raw-BER
//              requirement table; one label string per axis value
//   execute  - axis-contiguous struct-of-arrays cell blocks: a gather
//              pass decodes indices and reads the requirement table, a
//              batched pass maps BER -> SNR, an assembly pass finishes
//              the closed-form power algebra
//
// Every cell is bit-identical to evaluate_link_cell on the same
// Scenario (the hoisted tables are computed by the same functions the
// one-shot path calls, and the closed-form tail keeps its exact
// expression trees), so CSV/JSON exports are byte-identical to the
// legacy path at any thread count and any block size.
#ifndef PHOTECC_EXPLORE_PLAN_HPP
#define PHOTECC_EXPLORE_PLAN_HPP

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "photecc/explore/grid.hpp"
#include "photecc/explore/result.hpp"

namespace photecc::explore {

struct PlanOptions {
  /// Cells per struct-of-arrays block (and per work-stealing unit).
  /// Any value yields byte-identical results; 64 keeps the scratch
  /// arrays cache-resident while amortising queue traffic.
  std::size_t block_size = 64;
};

class LoweredPlan {
 public:
  /// Compiles `grid` (which must not declare NoC axes — traffic, gating
  /// or policy cells need the simulator, not the link solver; throws
  /// std::invalid_argument).  The grid is fully consumed at
  /// construction and need not outlive the plan.
  explicit LoweredPlan(const ScenarioGrid& grid, PlanOptions options = {});

  LoweredPlan(const LoweredPlan&) = delete;
  LoweredPlan& operator=(const LoweredPlan&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Lowering-side counters (cells / execute_time_s are filled per
  /// execute() call; warm_reuses here reflects one full execution).
  [[nodiscard]] const SweepStats& lowering_stats() const noexcept {
    return stats_;
  }

  /// Evaluates every cell: 0 threads = hardware concurrency, 1 =
  /// sequential on the calling thread.  The result (and its CSV/JSON
  /// serialisation) is byte-identical for any thread count, and to
  /// SweepRunner's legacy evaluate_link_cell path on the same grid.
  /// result.stats carries this plan's counters.
  [[nodiscard]] ExperimentResult execute(std::size_t threads = 1) const;

  /// Observer of one finished cell block: cells[begin, end) of the
  /// result vector are fully evaluated when it runs.
  using BlockCallback = std::function<void(
      std::size_t begin, std::size_t end,
      const std::vector<CellResult>& cells)>;

  /// Block-streaming execution: like execute(threads), but invokes
  /// `on_block` once per block of PlanOptions::block_size cells, in
  /// ascending block order — block k is always delivered before block
  /// k+1, at ANY thread count, even though blocks *compute* out of
  /// order under work stealing (a finished block is held back until
  /// every earlier one has been delivered; callbacks never run
  /// concurrently).  Large grids therefore stream results while later
  /// blocks are still computing, which is what the serve daemon's
  /// incremental `cells` records are built on.  The assembled result
  /// is byte-identical to the one-shot execute(threads).  A throwing
  /// callback aborts the sweep with parallel_for's first-exception
  /// semantics.
  [[nodiscard]] ExperimentResult execute(std::size_t threads,
                                         const BlockCallback& on_block) const;

 private:
  /// One hoisted channel context: everything that depends only on the
  /// (link variant, ONI count, modulation, environment) axis digits.
  struct ChannelCombo {
    std::unique_ptr<link::MwsrChannel> channel;  ///< owns; plan points in
    std::unique_ptr<core::ChannelSweepPlan> plan;
    math::Modulation modulation = math::Modulation::kOok;
    double total_loss_db = 0.0;  ///< channel-invariant link budget
  };

  void execute_block(std::size_t begin, std::size_t end,
                     std::vector<CellResult>& cells) const;

  PlanOptions options_;
  std::size_t size_ = 0;

  // Axis radices in grid enumeration order (1 = undeclared).
  std::size_t nc_ = 1, nw_ = 1, nb_ = 1, nv_ = 1, no_ = 1, nm_ = 1,
              ne_ = 1;
  bool has_code_axis_ = false;
  bool has_cooling_axis_ = false;
  bool has_ber_axis_ = false;

  // Effective axis values (Scenario defaults when undeclared).
  std::vector<std::string> code_names_;
  std::vector<double> bers_;

  // Pre-rendered label strings, one per declared axis value.
  std::vector<std::string> cooling_labels_;
  std::vector<std::string> ber_labels_;
  std::vector<std::string> link_labels_;
  std::vector<std::string> oni_labels_;
  std::vector<std::string> mod_labels_;
  std::vector<std::string> env_labels_;

  /// raw_ber of plan code (wi * nc_ + ci) at BER bi, indexed
  /// [bi * nc_ * nw_ + wi * nc_ + ci] — the shared requirement table
  /// every channel combo reads.  A cooling axis expands the plan's code
  /// list to nc_ * nw_ entries (each base code wrapped per weight,
  /// weight 0 = unwrapped), so inversions still run once per distinct
  /// (effective code, BER) pair.
  std::vector<double> requirements_;
  std::vector<ChannelCombo> combos_;

  SweepStats stats_;
};

}  // namespace photecc::explore

#endif  // PHOTECC_EXPLORE_PLAN_HPP
