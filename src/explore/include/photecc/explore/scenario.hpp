// One cell of a declarative design-space grid: every knob the engine can
// sweep, fully resolved.  A Scenario is cheap to materialise, so the
// grid enumerates them lazily and the runner never holds more than one
// per worker.
#ifndef PHOTECC_EXPLORE_SCENARIO_HPP
#define PHOTECC_EXPLORE_SCENARIO_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "photecc/core/channel_power.hpp"
#include "photecc/core/manager.hpp"
#include "photecc/link/mwsr_channel.hpp"

namespace photecc::explore {

/// Lookup in an (axis name, value label) list — the label shape shared
/// by Scenario and CellResult.
[[nodiscard]] inline std::optional<std::string> find_label(
    const std::vector<std::pair<std::string, std::string>>& labels,
    const std::string& axis) {
  for (const auto& [name, value] : labels)
    if (name == axis) return value;
  return std::nullopt;
}

/// Traffic workload axis value for NoC scenarios.
struct TrafficSpec {
  enum class Kind { kUniform, kHotspot, kTrace };
  std::string label = "uniform";
  Kind kind = Kind::kUniform;
  double rate_msgs_per_s = 2e8;     ///< aggregate injection rate
  std::uint64_t payload_bits = 4096;
  std::size_t hotspot = 0;          ///< hot tile (kHotspot only)
  double hotspot_fraction = 0.5;    ///< traffic share aimed at the hotspot
  std::string trace_path;           ///< message timeline file (kTrace only)
};

/// Poisson uniform-random workload at `rate_msgs_per_s`.
[[nodiscard]] TrafficSpec uniform_traffic(double rate_msgs_per_s,
                                          std::uint64_t payload_bits = 4096);

/// Uniform workload with a fraction redirected to one hot tile.
[[nodiscard]] TrafficSpec hotspot_traffic(double rate_msgs_per_s,
                                          std::size_t hotspot,
                                          double hotspot_fraction,
                                          std::uint64_t payload_bits = 4096);

/// Message timeline replayed from a trace file (noc::TraceTraffic
/// format; see traffic.hpp).  The file is read when a cell evaluates.
[[nodiscard]] TrafficSpec trace_traffic(std::string path);

/// Tiled-network configuration (see noc::NetworkSimulator): the
/// topology plus the per-channel coding and environment assignment.  A
/// grid with a NetworkSpec routes cells through the network evaluator;
/// all declared axes still sweep on top of it.
struct NetworkSpec {
  std::size_t tile_count = 16;
  std::size_t channel_count = 4;
  std::string mapping = "interleaved";  ///< "interleaved" or "blocked"
  /// Per-channel pinned codes (registry names, one per channel).  An
  /// empty vector — or an empty string entry — leaves the channel on
  /// the scenario's menu (single code when the code axis is set, else
  /// the adaptive paper menu).
  std::vector<std::string> channel_codes;
  /// Labelled per-channel environment timelines (one per channel when
  /// non-empty); empty inherits the scenario link's timeline
  /// everywhere.  The labels feed exports and bench tables.
  std::vector<std::pair<std::string, env::EnvironmentTimeline>>
      channel_environments;
};

/// One fully-specified cell of the design space.
struct Scenario {
  std::size_t index = 0;    ///< position in grid enumeration order
  std::uint64_t seed = 0;   ///< deterministic per-cell seed (index-derived)
  /// Code registry name; unset = "adaptive" (the NoC evaluator offers
  /// the manager the full paper menu, the link evaluator uses uncoded).
  std::optional<std::string> code;
  /// Cooling axis value: set when the grid declares cooling_weights().
  /// 0 = cooling off (the plain code above); w > 0 means `code` has
  /// already been wrapped into COOL(<base>, w) by the grid, and the
  /// evaluators emit the cooling metric columns (duty_bound,
  /// thermal_headroom_w).
  std::optional<std::size_t> cooling_weight;
  double target_ber = 1e-9;
  link::MwsrParams link{};
  core::SystemConfig system{};
  std::optional<TrafficSpec> traffic;  ///< set when the grid has NoC axes
  /// Tiled-network configuration; set when the grid declares one (the
  /// cell then evaluates on NetworkSimulator instead of NocSimulator).
  std::optional<NetworkSpec> network;
  bool laser_gating = true;
  core::Policy policy = core::Policy::kMinEnergy;
  double noc_horizon_s = 2e-6;
  /// (axis name, value label) for every axis the grid declares, in the
  /// grid's canonical axis order.  Carried into CellResult and exports.
  std::vector<std::pair<std::string, std::string>> labels;

  /// Value of the named axis label, or nullopt when the grid does not
  /// declare that axis.
  [[nodiscard]] std::optional<std::string> label(
      const std::string& axis) const {
    return find_label(labels, axis);
  }
};

}  // namespace photecc::explore

#endif  // PHOTECC_EXPLORE_SCENARIO_HPP
