// One cell of a declarative design-space grid: every knob the engine can
// sweep, fully resolved.  A Scenario is cheap to materialise, so the
// grid enumerates them lazily and the runner never holds more than one
// per worker.
#ifndef PHOTECC_EXPLORE_SCENARIO_HPP
#define PHOTECC_EXPLORE_SCENARIO_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "photecc/core/channel_power.hpp"
#include "photecc/core/manager.hpp"
#include "photecc/link/mwsr_channel.hpp"

namespace photecc::explore {

/// Lookup in an (axis name, value label) list — the label shape shared
/// by Scenario and CellResult.
[[nodiscard]] inline std::optional<std::string> find_label(
    const std::vector<std::pair<std::string, std::string>>& labels,
    const std::string& axis) {
  for (const auto& [name, value] : labels)
    if (name == axis) return value;
  return std::nullopt;
}

/// Traffic workload axis value for NoC scenarios.
struct TrafficSpec {
  enum class Kind { kUniform, kHotspot };
  std::string label = "uniform";
  Kind kind = Kind::kUniform;
  double rate_msgs_per_s = 2e8;     ///< aggregate injection rate
  std::uint64_t payload_bits = 4096;
  std::size_t hotspot = 0;          ///< hot ONI (kHotspot only)
  double hotspot_fraction = 0.5;    ///< traffic share aimed at the hotspot
};

/// Poisson uniform-random workload at `rate_msgs_per_s`.
[[nodiscard]] TrafficSpec uniform_traffic(double rate_msgs_per_s,
                                          std::uint64_t payload_bits = 4096);

/// Uniform workload with a fraction redirected to one hot ONI.
[[nodiscard]] TrafficSpec hotspot_traffic(double rate_msgs_per_s,
                                          std::size_t hotspot,
                                          double hotspot_fraction,
                                          std::uint64_t payload_bits = 4096);

/// One fully-specified cell of the design space.
struct Scenario {
  std::size_t index = 0;    ///< position in grid enumeration order
  std::uint64_t seed = 0;   ///< deterministic per-cell seed (index-derived)
  /// Code registry name; unset = "adaptive" (the NoC evaluator offers
  /// the manager the full paper menu, the link evaluator uses uncoded).
  std::optional<std::string> code;
  double target_ber = 1e-9;
  link::MwsrParams link{};
  core::SystemConfig system{};
  std::optional<TrafficSpec> traffic;  ///< set when the grid has NoC axes
  bool laser_gating = true;
  core::Policy policy = core::Policy::kMinEnergy;
  double noc_horizon_s = 2e-6;
  /// (axis name, value label) for every axis the grid declares, in the
  /// grid's canonical axis order.  Carried into CellResult and exports.
  std::vector<std::pair<std::string, std::string>> labels;

  /// Value of the named axis label, or nullopt when the grid does not
  /// declare that axis.
  [[nodiscard]] std::optional<std::string> label(
      const std::string& axis) const {
    return find_label(labels, axis);
  }
};

}  // namespace photecc::explore

#endif  // PHOTECC_EXPLORE_SCENARIO_HPP
