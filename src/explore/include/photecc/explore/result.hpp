// Aggregation layer of the exploration engine: per-cell named-metric
// records, generic N-objective Pareto extraction (generalising
// core::tradeoff's fixed 2-objective (Pchannel, CT) front) and
// deterministic CSV / JSON export.
//
// Exports deliberately contain only cell data — never timings or thread
// counts — so a parallel run serialises byte-identically to a
// sequential one.
#ifndef PHOTECC_EXPLORE_RESULT_HPP
#define PHOTECC_EXPLORE_RESULT_HPP

#include <cstddef>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "photecc/core/channel_power.hpp"
#include "photecc/core/tradeoff.hpp"

namespace photecc::explore {

/// One evaluated cell: the scenario's axis labels plus a flat record of
/// named metrics (insertion-ordered, so every evaluator defines the
/// column order of its exports).
struct CellResult {
  std::size_t index = 0;
  std::vector<std::pair<std::string, std::string>> labels;
  bool feasible = false;
  std::vector<std::pair<std::string, double>> metrics;
  /// Full analytic metrics, set by the link evaluator (bridges back to
  /// the core::tradeoff reporting machinery).
  std::optional<core::SchemeMetrics> scheme;

  /// Appends or overwrites the named metric.
  void set_metric(const std::string& name, double value);
  /// Value of the named metric, or nullopt when absent.
  [[nodiscard]] std::optional<double> metric(const std::string& name) const;
  /// Value of the named axis label, or nullopt when absent.
  [[nodiscard]] std::optional<std::string> label(
      const std::string& axis) const;
};

/// Renders one cell as the minified JSON object used everywhere a cell
/// crosses a serialization boundary — ExperimentResult::write_json's
/// array elements and the serve layer's streamed `cells` records share
/// this exact function, so a streamed cell is byte-identical to the
/// same cell in a one-shot export:
/// {"index":N,"labels":{...},"feasible":true,"metrics":{...}}.
/// Non-finite metric values serialise as null.
void write_cell_json(std::ostream& os, const CellResult& cell);

/// One dimension of an N-objective Pareto extraction.
struct Objective {
  std::string metric;
  bool minimize = true;
};

/// True when `a` is dominated by `b` under `objectives`: b is feasible,
/// no worse on every objective and strictly better on at least one.
/// Infeasible cells (or cells missing an objective metric) are dominated
/// by every feasible cell.  With objectives {ct, p_channel_w} this is
/// exactly core::is_dominated.
[[nodiscard]] bool is_dominated(const CellResult& a, const CellResult& b,
                                const std::vector<Objective>& objectives);

/// Indices of the non-dominated feasible cells, sorted by the first
/// objective (then the following ones, then index).
[[nodiscard]] std::vector<std::size_t> pareto_front_indices(
    const std::vector<CellResult>& cells,
    const std::vector<Objective>& objectives);

/// Observability counters of one lowered-plan sweep.  Informational
/// only: like the timing fields of ExperimentResult they are never part
/// of the CSV/JSON cell exports, so enabling the plan cannot perturb
/// byte-identity.  explore_cli --bench prints them in its summary.
///
/// Aggregation story (the reuse contract the serve layer builds on):
/// every field is *per-run* — one lower + one execute of one plan.
/// A caller that re-serves a run's cells from a cache must NOT reuse
/// the run's stats verbatim (they would claim solver work that never
/// happened again); it merges as_replay() instead, which keeps the
/// cell count and zeroes every work and time counter.  merge() is the
/// only sanctioned way to aggregate across runs: counters and times
/// add, so the derived rates (warm_hit_rate, cells_per_second) stay
/// consistent with the totals.
struct SweepStats {
  std::size_t cells = 0;             ///< cells executed
  std::size_t channels_lowered = 0;  ///< distinct channel combos hoisted
  std::size_t root_solves = 0;       ///< (code, BER) inversions actually run
  std::size_t solver_iterations = 0; ///< Brent iterations across all solves
  std::size_t warm_reuses = 0;       ///< cells served from hoisted tables
  double lower_time_s = 0.0;         ///< plan construction wall time
  double execute_time_s = 0.0;       ///< cell execution wall time

  /// Fraction of cells that skipped the code-model inversion.
  [[nodiscard]] double warm_hit_rate() const;
  /// Cells per second of execute time (0 when unmeasurably fast).
  [[nodiscard]] double cells_per_second() const;
  /// Accumulates another run into this one: every counter and time
  /// adds.  Use on a zero-initialised SweepStats to aggregate a
  /// sequence of runs (the serve daemon's lifetime totals).
  void merge(const SweepStats& other);
  /// The cached-replay view of this run: cells kept, every work
  /// counter (root solves, iterations, warm reuses, channels) and
  /// time zeroed.  Re-serving cached cells merges this, so replays
  /// report zero solver work instead of the original run's numbers.
  [[nodiscard]] SweepStats as_replay() const;
  /// Flat JSON object ({"cells":...,"warm_hit_rate":...}) for bench
  /// summaries; NOT part of ExperimentResult::json().
  [[nodiscard]] std::string json() const;
};

/// Everything one SweepRunner::run produced.
struct ExperimentResult {
  std::vector<CellResult> cells;  ///< slot-indexed by Scenario::index
  std::size_t threads_used = 1;   ///< informational; not exported
  double wall_time_s = 0.0;       ///< informational; not exported
  /// Set when the run went through explore::LoweredPlan; informational,
  /// never exported (write_csv / write_json contain cell data only).
  std::optional<SweepStats> stats;

  [[nodiscard]] std::vector<std::size_t> pareto_front(
      const std::vector<Objective>& objectives) const;

  /// CSV: header `index,<axis...>,feasible,<metric...>`; axis and metric
  /// columns are the first-seen-order union over all cells.  Fields are
  /// minimally quoted (labels like "BCH(15,7,2)" contain commas) and
  /// doubles use shortest round-trip formatting.
  void write_csv(std::ostream& os) const;
  [[nodiscard]] std::string csv() const;

  /// JSON: {"cells": [{"index", "labels": {...}, "feasible",
  /// "metrics": {...}}, ...]}.  Non-finite doubles serialise as null.
  void write_json(std::ostream& os) const;
  [[nodiscard]] std::string json() const;

  /// Bridges link-evaluator results back to the 2-objective core
  /// machinery (pareto_table & friends).  Cells without SchemeMetrics
  /// are skipped.
  [[nodiscard]] core::TradeoffSweep to_tradeoff_sweep() const;
};

}  // namespace photecc::explore

#endif  // PHOTECC_EXPLORE_RESULT_HPP
