#include "photecc/explore/runner.hpp"

#include <algorithm>
#include <chrono>

#include "photecc/explore/evaluators.hpp"
#include "photecc/explore/plan.hpp"
#include "photecc/math/parallel.hpp"

namespace photecc::explore {

ExperimentResult SweepRunner::run(const ScenarioGrid& grid,
                                  const Evaluator& evaluate) const {
  ExperimentResult result;
  const std::size_t n = grid.size();
  result.cells.resize(n);
  const std::size_t threads =
      options_.threads ? options_.threads : math::default_thread_count();
  result.threads_used = std::max<std::size_t>(1, std::min(threads, n));

  const auto start = std::chrono::steady_clock::now();
  math::parallel_for(n, threads, [&](std::size_t i) {
    result.cells[i] = evaluate(grid.at(i));
  });
  result.wall_time_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

ExperimentResult SweepRunner::run(const ScenarioGrid& grid) const {
  // NoC grids run the simulator per cell; everything else compiles to a
  // LoweredPlan (byte-identical to the per-cell evaluate_link_cell
  // path, ~10-100x faster — see bench_explore_hotpath).
  if (grid.has_network())
    return run(grid, Evaluator{evaluate_network_cell});
  if (grid.has_noc_axes()) return run(grid, Evaluator{evaluate_noc_cell});
  return LoweredPlan{grid}.execute(options_.threads);
}

}  // namespace photecc::explore
