#include "photecc/explore/evaluators.hpp"

#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include <algorithm>

#include "photecc/cooling/cooling_code.hpp"
#include "photecc/core/channel_power.hpp"
#include "photecc/ecc/registry.hpp"
#include "photecc/link/link_budget.hpp"
#include "photecc/noc/network.hpp"
#include "photecc/noc/simulator.hpp"
#include "photecc/noc/traffic.hpp"

namespace photecc::explore {

const std::vector<std::string>& paper_scheme_names() {
  static const std::vector<std::string> names{"w/o ECC", "H(71,64)",
                                              "H(7,4)"};
  return names;
}

const std::vector<Objective>& fig6b_objectives() {
  static const std::vector<Objective> objectives{{"ct", true},
                                                 {"p_channel_w", true}};
  return objectives;
}

const std::vector<std::string>& link_cell_metric_names() {
  static const std::vector<std::string> names{
      "ct",          "p_channel_w",      "p_laser_w",
      "p_mr_w",      "p_enc_dec_w",      "energy_per_bit_j",
      "code_rate",   "op_laser_w",       "snr",
      "p_interconnect_w", "total_loss_db"};
  return names;
}

const std::vector<std::string>& noc_cell_metric_names() {
  static const std::vector<std::string> names{
      "delivered",       "dropped",         "deadline_misses",
      "mean_latency_s",  "p95_latency_s",   "max_latency_s",
      "total_energy_j",  "laser_energy_j",  "idle_laser_energy_j",
      "energy_per_bit_j", "busy_time_s"};
  return names;
}

const std::vector<std::string>& noc_env_metric_names() {
  static const std::vector<std::string> names{
      "dropped_thermal", "recalibrations", "recalibration_energy_j",
      "peak_activity", "final_activity"};
  return names;
}

const std::vector<std::string>& network_channel_metric_names() {
  static const std::vector<std::string> names{
      "delivered",      "dropped",          "dropped_thermal",
      "mean_latency_s", "p95_latency_s",    "total_energy_j",
      "energy_per_bit_j", "recalibrations"};
  return names;
}

const std::vector<std::string>& cooling_metric_names() {
  static const std::vector<std::string> names{"duty_bound",
                                              "thermal_headroom_w"};
  return names;
}

namespace {

/// Smallest transmit duty bound across a scheme menu — what the
/// hottest-case wire count of an adaptive channel is bounded by.
double menu_duty_bound(const std::vector<ecc::BlockCodePtr>& menu) {
  double bound = 1.0;
  for (const auto& code : menu)
    bound = std::min(bound, code->transmit_duty_bound());
  return bound;
}

}  // namespace

CellResult evaluate_link_cell(const Scenario& scenario) {
  cooling::register_cooling_codes();
  CellResult result;
  result.index = scenario.index;
  result.labels = scenario.labels;

  const link::MwsrChannel channel{scenario.link};
  const auto code = ecc::make_code(scenario.code.value_or("w/o ECC"));
  core::SchemeMetrics m =
      core::evaluate_scheme(channel, *code, scenario.target_ber,
                            scenario.system);
  result.feasible = m.feasible;
  result.set_metric("ct", m.ct);
  result.set_metric("p_channel_w", m.p_channel_w);
  result.set_metric("p_laser_w", m.p_laser_w);
  result.set_metric("p_mr_w", m.p_mr_w);
  result.set_metric("p_enc_dec_w", m.p_enc_dec_w);
  result.set_metric("energy_per_bit_j", m.energy_per_bit_j);
  result.set_metric("code_rate", m.code_rate);
  result.set_metric("op_laser_w", m.operating_point.op_laser_w);
  result.set_metric("snr", m.operating_point.snr);
  result.set_metric("p_interconnect_w", m.p_interconnect_w);

  const auto budget =
      link::compute_link_budget(channel, channel.worst_channel());
  result.set_metric("total_loss_db", budget.total_loss_db);

  if (scenario.cooling_weight) {
    result.set_metric("duty_bound", m.duty_bound);
    result.set_metric(
        "thermal_headroom_w",
        core::thermal_headroom_w(channel, m, channel.environment()));
  }

  result.scheme = std::move(m);
  return result;
}

namespace {

std::shared_ptr<const noc::TrafficGenerator> make_generator(
    const Scenario& scenario) {
  const TrafficSpec spec = scenario.traffic.value_or(TrafficSpec{});
  const std::size_t tiles = scenario.network ? scenario.network->tile_count
                                             : scenario.link.oni_count;
  switch (spec.kind) {
    case TrafficSpec::Kind::kHotspot:
      return std::make_shared<noc::HotspotTraffic>(
          tiles, spec.rate_msgs_per_s, spec.payload_bits, spec.hotspot,
          spec.hotspot_fraction);
    case TrafficSpec::Kind::kTrace:
      return std::make_shared<noc::TraceTraffic>(
          noc::TraceTraffic::from_file(spec.trace_path));
    case TrafficSpec::Kind::kUniform:
      break;
  }
  return std::make_shared<noc::UniformRandomTraffic>(
      tiles, spec.rate_msgs_per_s, spec.payload_bits,
      noc::TrafficClass::kBestEffort, scenario.target_ber);
}

/// Aggregate columns shared by the NoC and network evaluators, in the
/// noc_cell_metric_names() order (+ noc_env_metric_names() when
/// env_columns).
void set_aggregate_metrics(CellResult& result, const noc::NocStats& stats,
                           std::uint64_t total_payload_bits,
                           bool env_columns) {
  result.feasible = stats.delivered > 0;
  result.set_metric("delivered", static_cast<double>(stats.delivered));
  result.set_metric("dropped", static_cast<double>(stats.dropped));
  result.set_metric("deadline_misses",
                    static_cast<double>(stats.deadline_misses));
  result.set_metric("mean_latency_s", stats.mean_latency_s);
  result.set_metric("p95_latency_s", stats.p95_latency_s);
  result.set_metric("max_latency_s", stats.max_latency_s);
  result.set_metric("total_energy_j", stats.total_energy_j);
  result.set_metric("laser_energy_j", stats.laser_energy_j);
  result.set_metric("idle_laser_energy_j", stats.idle_laser_energy_j);
  result.set_metric("energy_per_bit_j",
                    stats.energy_per_bit_j(total_payload_bits));
  result.set_metric("busy_time_s", stats.busy_time_s);
  if (env_columns) {
    // Environment-only columns: appended after the stable set so
    // environment-free grids keep their historical export layout.
    result.set_metric("dropped_thermal",
                      static_cast<double>(stats.dropped_thermal));
    result.set_metric("recalibrations",
                      static_cast<double>(stats.recalibrations));
    result.set_metric("recalibration_energy_j",
                      stats.recalibration_energy_j);
    result.set_metric("peak_activity", stats.peak_activity);
    result.set_metric("final_activity", stats.final_activity);
  }
}

}  // namespace

CellResult evaluate_noc_cell(const Scenario& scenario) {
  cooling::register_cooling_codes();
  CellResult result;
  result.index = scenario.index;
  result.labels = scenario.labels;

  noc::NocConfig config;
  config.oni_count = scenario.link.oni_count;
  config.link_params = scenario.link;
  config.system = scenario.system;
  config.scheme_menu = scenario.code
                           ? std::vector<ecc::BlockCodePtr>{ecc::make_code(
                                 *scenario.code)}
                           : ecc::paper_schemes();
  config.default_requirements.target_ber = scenario.target_ber;
  config.default_requirements.policy = scenario.policy;
  config.laser_gating = scenario.laser_gating;
  const double duty_bound = menu_duty_bound(config.scheme_menu);

  const noc::NocSimulator simulator{std::move(config)};
  const auto generator = make_generator(scenario);
  const noc::NocRunResult run =
      simulator.run(*generator, scenario.noc_horizon_s, scenario.seed);

  set_aggregate_metrics(result, run.stats, run.total_payload_bits,
                        scenario.link.environment.has_value());
  if (scenario.cooling_weight) result.set_metric("duty_bound", duty_bound);
  return result;
}

CellResult evaluate_network_cell(const Scenario& scenario) {
  if (!scenario.network) return evaluate_noc_cell(scenario);
  cooling::register_cooling_codes();
  const NetworkSpec& net = *scenario.network;

  CellResult result;
  result.index = scenario.index;
  result.labels = scenario.labels;

  noc::NetworkConfig config;
  config.topology.tile_count = net.tile_count;
  config.topology.channel_count = net.channel_count;
  if (net.mapping == "interleaved")
    config.topology.mapping = noc::NetworkTopology::Mapping::kInterleaved;
  else if (net.mapping == "blocked")
    config.topology.mapping = noc::NetworkTopology::Mapping::kBlocked;
  else
    throw std::invalid_argument("NetworkSpec: unknown mapping '" +
                                net.mapping +
                                "' (expected interleaved or blocked)");
  config.base_link = scenario.link;
  config.system = scenario.system;
  config.scheme_menu = scenario.code
                           ? std::vector<ecc::BlockCodePtr>{ecc::make_code(
                                 *scenario.code)}
                           : ecc::paper_schemes();
  config.default_requirements.target_ber = scenario.target_ber;
  config.default_requirements.policy = scenario.policy;
  config.laser_gating = scenario.laser_gating;

  if (!net.channel_codes.empty() &&
      net.channel_codes.size() != net.channel_count)
    throw std::invalid_argument(
        "NetworkSpec: channel_codes must name one code per channel");
  if (!net.channel_environments.empty() &&
      net.channel_environments.size() != net.channel_count)
    throw std::invalid_argument(
        "NetworkSpec: channel_environments must give one timeline per "
        "channel");
  if (!net.channel_codes.empty() || !net.channel_environments.empty()) {
    config.channels.resize(net.channel_count);
    for (std::size_t ch = 0; ch < net.channel_count; ++ch) {
      if (!net.channel_codes.empty() && !net.channel_codes[ch].empty())
        config.channels[ch].scheme_menu = {
            ecc::make_code(net.channel_codes[ch])};
      if (!net.channel_environments.empty())
        config.channels[ch].environment = net.channel_environments[ch].second;
    }
  }

  const bool env_columns = scenario.link.environment.has_value() ||
                           !net.channel_environments.empty();
  // The network-wide duty bound is the loosest channel's: every channel
  // without a pinned cooling code can light all its wires.
  double duty_bound = net.channel_codes.empty()
                          ? menu_duty_bound(config.scheme_menu)
                          : 0.0;
  if (!net.channel_codes.empty()) {
    const double menu_bound = menu_duty_bound(config.scheme_menu);
    for (std::size_t ch = 0; ch < net.channel_count; ++ch) {
      const bool pinned =
          ch < config.channels.size() && !config.channels[ch].scheme_menu.empty();
      duty_bound = std::max(
          duty_bound, pinned
                          ? menu_duty_bound(config.channels[ch].scheme_menu)
                          : menu_bound);
    }
  }

  const noc::NetworkSimulator simulator{std::move(config)};
  const auto generator = make_generator(scenario);
  const noc::NetworkRunResult run =
      simulator.run(*generator, scenario.noc_horizon_s, scenario.seed);

  set_aggregate_metrics(result, run.stats.aggregate, run.total_payload_bits,
                        env_columns);
  if (scenario.cooling_weight) result.set_metric("duty_bound", duty_bound);

  for (std::size_t ch = 0; ch < run.stats.channels.size(); ++ch) {
    const noc::NocStats& cs = run.stats.channels[ch];
    const std::string prefix = "ch" + std::to_string(ch) + "_";
    result.set_metric(prefix + "delivered",
                      static_cast<double>(cs.delivered));
    result.set_metric(prefix + "dropped", static_cast<double>(cs.dropped));
    result.set_metric(prefix + "dropped_thermal",
                      static_cast<double>(cs.dropped_thermal));
    result.set_metric(prefix + "mean_latency_s", cs.mean_latency_s);
    result.set_metric(prefix + "p95_latency_s", cs.p95_latency_s);
    result.set_metric(prefix + "total_energy_j", cs.total_energy_j);
    result.set_metric(
        prefix + "energy_per_bit_j",
        cs.energy_per_bit_j(run.stats.channel_payload_bits[ch]));
    result.set_metric(prefix + "recalibrations",
                      static_cast<double>(cs.recalibrations));
  }
  return result;
}

}  // namespace photecc::explore
