#include "photecc/explore/plan.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "photecc/cooling/cooling_code.hpp"
#include "photecc/ecc/registry.hpp"
#include "photecc/link/link_budget.hpp"
#include "photecc/math/modulation.hpp"
#include "photecc/math/parallel.hpp"
#include "photecc/math/table.hpp"

namespace photecc::explore {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

LoweredPlan::LoweredPlan(const ScenarioGrid& grid, PlanOptions options)
    : options_(options) {
  if (grid.has_noc_axes())
    throw std::invalid_argument(
        "LoweredPlan: grid declares NoC axes (traffic/gating/policy); "
        "those cells need the simulator evaluator");
  const auto start = std::chrono::steady_clock::now();

  // --- Effective axes: Scenario's defaults stand in for undeclared
  // ones (evaluate_link_cell uses code "w/o ECC" and target 1e-9), with
  // no label emitted.
  cooling::register_cooling_codes();
  code_names_ = grid.code_axis();
  has_code_axis_ = !code_names_.empty();
  if (!has_code_axis_) code_names_ = {"w/o ECC"};
  const auto& weights = grid.cooling_axis();
  has_cooling_axis_ = !weights.empty();
  bers_ = grid.ber_axis();
  has_ber_axis_ = !bers_.empty();
  if (!has_ber_axis_) bers_ = {1e-9};

  const auto& variants = grid.link_variant_axis();
  const auto& onis = grid.oni_axis();
  const auto& mods = grid.modulation_axis();
  const auto& envs = grid.environment_axis();
  nc_ = code_names_.size();
  nw_ = std::max<std::size_t>(1, weights.size());
  nb_ = bers_.size();
  nv_ = std::max<std::size_t>(1, variants.size());
  no_ = std::max<std::size_t>(1, onis.size());
  nm_ = std::max<std::size_t>(1, mods.size());
  ne_ = std::max<std::size_t>(1, envs.size());
  size_ = grid.size();

  // --- Label strings, rendered once per axis value with the exact
  // formatting of ScenarioGrid::at.
  if (has_cooling_axis_) {
    cooling_labels_.reserve(nw_);
    for (const std::size_t w : weights)
      cooling_labels_.push_back(w == 0 ? "off" : "w" + std::to_string(w));
  }
  if (has_ber_axis_) {
    ber_labels_.reserve(nb_);
    for (const double ber : bers_)
      ber_labels_.push_back(math::format_sci(ber, 0));
  }
  for (const auto& [label, params] : variants) {
    (void)params;
    link_labels_.push_back(label);
  }
  for (const std::size_t oni : onis)
    oni_labels_.push_back(std::to_string(oni));
  for (const math::Modulation mod : mods)
    mod_labels_.push_back(math::to_string(mod));
  for (const auto& [label, timeline] : envs) {
    (void)timeline;
    env_labels_.push_back(label);
  }

  // --- Shared (code, BER) requirement table.  The inversion depends
  // only on the code model, never on the channel, so every combo reads
  // the same table; bit-equal to the per-cell inversion because it IS
  // the per-cell inversion, run once per distinct pair.  The cooling
  // axis expands the plan's code list to nc_ * nw_ effective codes —
  // the same COOL(<base>, w) wrap ScenarioGrid::at applies per cell.
  std::vector<ecc::BlockCodePtr> codes;
  codes.reserve(nc_ * nw_);
  for (std::size_t wi = 0; wi < nw_; ++wi) {
    for (const auto& name : code_names_) {
      const bool wrap = has_cooling_axis_ && weights[wi] > 0;
      codes.push_back(ecc::make_code(
          wrap ? cooling::cooling_name(name, weights[wi]) : name));
    }
  }
  requirements_.resize(nc_ * nw_ * nb_);
  for (std::size_t bi = 0; bi < nb_; ++bi) {
    for (std::size_t pci = 0; pci < nc_ * nw_; ++pci) {
      ecc::RawBerSolveTrace trace;
      requirements_[bi * nc_ * nw_ + pci] =
          codes[pci]->required_raw_ber_checked(bers_[bi], &trace).raw_ber;
      ++stats_.root_solves;
      stats_.solver_iterations +=
          static_cast<std::size_t>(std::max(0, trace.iterations));
    }
  }

  // --- Channel combos: one MwsrChannel (one worst-channel scan), one
  // core plan and one link budget per distinct slow-axis digit tuple,
  // overriding the base parameters in ScenarioGrid::at's order.
  combos_.reserve(nv_ * no_ * nm_ * ne_);
  for (std::size_t ei = 0; ei < ne_; ++ei) {
    for (std::size_t mi = 0; mi < nm_; ++mi) {
      for (std::size_t oi = 0; oi < no_; ++oi) {
        for (std::size_t vi = 0; vi < nv_; ++vi) {
          link::MwsrParams params = grid.base_link_params();
          core::SystemConfig system = grid.base_system_config();
          if (!variants.empty()) params = variants[vi].second;
          if (!onis.empty()) {
            params.oni_count = onis[oi];
            system.oni_count = onis[oi];
          }
          if (!mods.empty()) params.modulation = mods[mi];
          if (!envs.empty()) params.environment = envs[ei].second;

          ChannelCombo combo;
          combo.channel =
              std::make_unique<link::MwsrChannel>(std::move(params));
          combo.plan = std::make_unique<core::ChannelSweepPlan>(
              *combo.channel, codes, system);
          combo.modulation = combo.channel->params().modulation;
          combo.total_loss_db =
              link::compute_link_budget(*combo.channel,
                                        combo.plan->solver().channel_index())
                  .total_loss_db;
          combos_.push_back(std::move(combo));
        }
      }
    }
  }
  stats_.channels_lowered = combos_.size();
  stats_.lower_time_s = seconds_since(start);
}

void LoweredPlan::execute_block(std::size_t begin, std::size_t end,
                                std::vector<CellResult>& cells) const {
  const std::size_t n = end - begin;
  // Struct-of-arrays scratch: decode once, then run the transcendental
  // BER -> SNR map as one tight batch before any per-cell assembly.
  std::vector<std::size_t> ci(n), wi(n), bi(n), vi(n), oi(n), mi(n), ei(n);
  std::vector<std::size_t> pci(n), combo(n);
  std::vector<double> raw_ber(n), snr(n);

  for (std::size_t k = 0; k < n; ++k) {
    // Mixed-radix decode in grid axis order; the NoC axes are absent by
    // construction, so their radix-1 digits vanish.
    std::size_t rem = begin + k;
    ci[k] = rem % nc_;
    rem /= nc_;
    wi[k] = rem % nw_;
    rem /= nw_;
    bi[k] = rem % nb_;
    rem /= nb_;
    vi[k] = rem % nv_;
    rem /= nv_;
    oi[k] = rem % no_;
    rem /= no_;
    mi[k] = rem % nm_;
    rem /= nm_;
    ei[k] = rem % ne_;
    combo[k] = vi[k] + nv_ * (oi[k] + no_ * (mi[k] + nm_ * ei[k]));
    pci[k] = wi[k] * nc_ + ci[k];
    raw_ber[k] = requirements_[bi[k] * nc_ * nw_ + pci[k]];
  }

  for (std::size_t k = 0; k < n; ++k)
    snr[k] = math::snr_from_ber_clamped(combos_[combo[k]].modulation,
                                        raw_ber[k]);

  for (std::size_t k = 0; k < n; ++k) {
    const ChannelCombo& c = combos_[combo[k]];
    CellResult cell;
    cell.index = begin + k;
    // Labels in the grid's canonical axis order, from the pre-rendered
    // strings.
    if (has_code_axis_)
      cell.labels.emplace_back("code", code_names_[ci[k]]);
    if (has_cooling_axis_)
      cell.labels.emplace_back("cooling", cooling_labels_[wi[k]]);
    if (has_ber_axis_)
      cell.labels.emplace_back("target_ber", ber_labels_[bi[k]]);
    if (!link_labels_.empty())
      cell.labels.emplace_back("link", link_labels_[vi[k]]);
    if (!oni_labels_.empty())
      cell.labels.emplace_back("oni_count", oni_labels_[oi[k]]);
    if (!mod_labels_.empty())
      cell.labels.emplace_back("modulation", mod_labels_[mi[k]]);
    if (!env_labels_.empty())
      cell.labels.emplace_back("environment", env_labels_[ei[k]]);

    core::SchemeMetrics m = c.plan->evaluate_with_solution(
        pci[k], bers_[bi[k]], raw_ber[k], snr[k]);
    cell.feasible = m.feasible;
    cell.set_metric("ct", m.ct);
    cell.set_metric("p_channel_w", m.p_channel_w);
    cell.set_metric("p_laser_w", m.p_laser_w);
    cell.set_metric("p_mr_w", m.p_mr_w);
    cell.set_metric("p_enc_dec_w", m.p_enc_dec_w);
    cell.set_metric("energy_per_bit_j", m.energy_per_bit_j);
    cell.set_metric("code_rate", m.code_rate);
    cell.set_metric("op_laser_w", m.operating_point.op_laser_w);
    cell.set_metric("snr", m.operating_point.snr);
    cell.set_metric("p_interconnect_w", m.p_interconnect_w);
    cell.set_metric("total_loss_db", c.total_loss_db);
    if (has_cooling_axis_) {
      cell.set_metric("duty_bound", m.duty_bound);
      cell.set_metric("thermal_headroom_w",
                      core::thermal_headroom_w(*c.channel, m,
                                               c.channel->environment()));
    }
    cell.scheme = std::move(m);
    cells[begin + k] = std::move(cell);
  }
}

ExperimentResult LoweredPlan::execute(std::size_t threads) const {
  return execute(threads, BlockCallback{});
}

ExperimentResult LoweredPlan::execute(std::size_t threads,
                                      const BlockCallback& on_block) const {
  ExperimentResult result;
  result.cells.resize(size_);
  const std::size_t workers =
      threads ? threads : math::default_thread_count();
  result.threads_used = std::max<std::size_t>(1, std::min(workers, size_));

  // In-order delivery state: parallel_for_blocks hands out the SAME
  // fixed partition at every thread count, so block k is exactly
  // [k * block, min(size, (k + 1) * block)).  Whichever worker finishes
  // the oldest undelivered block drains every consecutive finished one
  // under the mutex — callbacks are serialised and strictly ascending.
  const std::size_t block = std::max<std::size_t>(1, options_.block_size);
  const std::size_t n_blocks = size_ ? (size_ + block - 1) / block : 0;
  std::vector<char> finished(n_blocks, 0);
  std::size_t next_to_deliver = 0;
  std::mutex delivery_mutex;

  const auto start = std::chrono::steady_clock::now();
  math::parallel_for_blocks(
      size_, options_.block_size, threads,
      [&](std::size_t begin, std::size_t end) {
        execute_block(begin, end, result.cells);
        if (!on_block) return;
        const std::lock_guard<std::mutex> lock(delivery_mutex);
        finished[begin / block] = 1;
        while (next_to_deliver < n_blocks && finished[next_to_deliver]) {
          const std::size_t b = next_to_deliver * block;
          on_block(b, std::min(size_, b + block), result.cells);
          ++next_to_deliver;
        }
      });
  result.wall_time_s = seconds_since(start);

  SweepStats stats = stats_;
  stats.cells = size_;
  // Every cell beyond the distinct (code, BER) pairs is served from the
  // hoisted tables without touching a root solver.
  stats.warm_reuses = size_ - std::min(size_, stats.root_solves);
  stats.execute_time_s = result.wall_time_s;
  result.stats = stats;
  return result;
}

}  // namespace photecc::explore
