// Bit-true serializer / deserializer models (paper Section IV-C).
//
// The serializer is a register pipeline of depth equal to the frame
// size: a parallel frame is loaded through per-register 2:1 muxes, then
// shifted out one bit per Fmod cycle, bit 0 first.  The deserializer
// mirrors it.  These models are cycle-accurate at the bit level and are
// used by the end-to-end Monte-Carlo experiments.
#ifndef PHOTECC_INTERFACE_SERIALIZER_HPP
#define PHOTECC_INTERFACE_SERIALIZER_HPP

#include <cstddef>
#include <optional>
#include <vector>

#include "photecc/ecc/bitvec.hpp"

namespace photecc::interface {

/// Parallel-in serial-out register pipeline.
class Serializer {
 public:
  /// `frame_bits` is the pipeline depth (e.g. 112 for H(7,4) frames).
  explicit Serializer(std::size_t frame_bits);

  [[nodiscard]] std::size_t frame_bits() const noexcept { return depth_; }

  /// True when the pipeline has shifted everything out.
  [[nodiscard]] bool empty() const noexcept { return remaining_ == 0; }

  /// Loads a frame (size must equal frame_bits); any bits still in the
  /// pipeline are discarded (load has priority on the input muxes).
  void load(const ecc::BitVec& frame);

  /// Shifts one bit out (bit 0 of the loaded frame first).  Returns
  /// std::nullopt when the pipeline is empty.
  std::optional<bool> shift_out();

  /// Convenience: serialise a whole frame to wire order.
  [[nodiscard]] static std::vector<bool> serialize(const ecc::BitVec& frame);

 private:
  std::size_t depth_;
  std::vector<bool> pipeline_;
  std::size_t remaining_ = 0;
};

/// Serial-in parallel-out register pipeline.
class Deserializer {
 public:
  explicit Deserializer(std::size_t frame_bits);

  [[nodiscard]] std::size_t frame_bits() const noexcept { return depth_; }

  /// Number of bits currently captured.
  [[nodiscard]] std::size_t fill() const noexcept { return fill_; }

  /// Captures one bit; returns the completed frame when the pipeline
  /// fills, then resets for the next frame.
  std::optional<ecc::BitVec> shift_in(bool bit);

  /// Convenience: deserialise a full wire sequence (size must be a
  /// multiple of frame_bits) into frames.
  [[nodiscard]] static std::vector<ecc::BitVec> deserialize(
      const std::vector<bool>& wire, std::size_t frame_bits);

 private:
  std::size_t depth_;
  std::vector<bool> pipeline_;
  std::size_t fill_ = 0;
};

}  // namespace photecc::interface

#endif  // PHOTECC_INTERFACE_SERIALIZER_HPP
