// Synthesis-results model of the electrical/optical interface
// (paper Table I, Section V-A).
//
// Two sources of numbers are provided:
//  * table1_reference() — the paper's synthesised values, embedded as a
//    reference dataset (28 nm FDSOI, FIP = 1 GHz, Ndata = 64,
//    Fmod = 10 Gb/s);
//  * SynthesisEstimator — a DSENT-style analytic estimator that derives
//    area / critical path / static / dynamic power from gate counts
//    (XOR trees taken from the actual generator matrices, registers
//    from SER/DES depths, mux widths from the mode count).
//
// The estimator exists because we cannot run the authors' synthesis
// flow; the bench bench_table1_synthesis prints both so the deviation
// is visible.  Downstream power roll-ups use the reference dataset.
#ifndef PHOTECC_INTERFACE_SYNTHESIS_MODEL_HPP
#define PHOTECC_INTERFACE_SYNTHESIS_MODEL_HPP

#include <string>
#include <vector>

#include "photecc/ecc/block_code.hpp"
#include "photecc/interface/technology.hpp"

namespace photecc::interface {

/// The three communication modes of the synthesised interface.
enum class InterfaceMode { kUncoded, kHamming74, kHamming7164 };

[[nodiscard]] std::string to_string(InterfaceMode mode);

/// Synthesis figures of one hardware block (one Table I row).
struct BlockSynthesis {
  std::string name;
  double area_um2 = 0.0;
  double critical_path_ps = 0.0;
  double static_nw = 0.0;    ///< leakage [nW]
  double dynamic_uw = 0.0;   ///< switching power at nominal clocks [uW]
  [[nodiscard]] double total_uw() const noexcept {
    return dynamic_uw + static_nw * 1e-3;
  }
};

/// One side (transmitter or receiver) of the interface.
struct InterfaceSynthesis {
  std::vector<BlockSynthesis> blocks;
  double total_area_um2 = 0.0;
  /// Active-path powers per mode [uW]: only the selected coding path
  /// toggles (clock/enable gating), so dynamic power is mode-dependent.
  double dynamic_uw_uncoded = 0.0;
  double dynamic_uw_h74 = 0.0;
  double dynamic_uw_h7164 = 0.0;

  [[nodiscard]] double dynamic_uw(InterfaceMode mode) const;
};

/// Both sides of the paper's interface.
struct InterfacePair {
  InterfaceSynthesis transmitter;
  InterfaceSynthesis receiver;

  /// Combined TX+RX dynamic power for a mode [W].
  [[nodiscard]] double total_power_w(InterfaceMode mode) const;

  /// Per-wavelength encoder+decoder power P_ENC+DEC [W] used in the
  /// channel roll-up (interface shared by `wavelengths` carriers).
  [[nodiscard]] double enc_dec_power_per_wavelength_w(
      InterfaceMode mode, std::size_t wavelengths) const;
};

/// The paper's Table I values.
InterfacePair table1_reference();

/// Operating frequencies of the synthesised interface.
struct InterfaceClocks {
  double f_ip_hz = 1e9;     ///< IP-side parallel clock FIP
  double f_mod_hz = 10e9;   ///< modulation / serial clock Fmod
  std::size_t n_data = 64;  ///< IP bus width Ndata
};

/// DSENT-style analytic estimator.
class SynthesisEstimator {
 public:
  explicit SynthesisEstimator(TechnologyParams tech = fdsoi28(),
                              InterfaceClocks clocks = {});

  /// Estimate for a bank of Hamming encoders covering the IP bus
  /// (e.g. 16 x H(7,4) for Ndata = 64).
  [[nodiscard]] BlockSynthesis encoder_bank(
      const ecc::BlockCode& code) const;

  /// Estimate for the matching decoder bank.
  [[nodiscard]] BlockSynthesis decoder_bank(
      const ecc::BlockCode& code) const;

  /// Serializer of `frame_bits` working at Fmod.
  [[nodiscard]] BlockSynthesis serializer(std::size_t frame_bits) const;

  /// Deserializer of `frame_bits` working at Fmod.
  [[nodiscard]] BlockSynthesis deserializer(std::size_t frame_bits) const;

  /// Path-select mux with `ways` inputs of `width` bits at FIP.
  [[nodiscard]] BlockSynthesis path_mux(std::size_t ways,
                                        std::size_t width) const;

  /// Assembles a full transmitter (mux + coder banks + serializers) in
  /// the paper's three-mode configuration.
  [[nodiscard]] InterfaceSynthesis transmitter() const;

  /// Assembles the full receiver (mux + decoder banks + deserializers).
  [[nodiscard]] InterfaceSynthesis receiver() const;

  /// Both sides.
  [[nodiscard]] InterfacePair interface_pair() const;

  [[nodiscard]] const TechnologyParams& technology() const noexcept {
    return tech_;
  }
  [[nodiscard]] const InterfaceClocks& clocks() const noexcept {
    return clocks_;
  }

 private:
  /// Area/leakage/delay from gate-equivalent counts plus dynamic power
  /// from an explicit per-cycle energy at `clock_hz`.
  [[nodiscard]] BlockSynthesis from_gates(std::string name,
                                          double gate_equivalents,
                                          double energy_per_cycle_j,
                                          double logic_depth,
                                          double clock_hz) const;

  TechnologyParams tech_;
  InterfaceClocks clocks_;
};

}  // namespace photecc::interface

#endif  // PHOTECC_INTERFACE_SYNTHESIS_MODEL_HPP
