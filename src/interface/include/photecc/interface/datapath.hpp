// Bit-true transmitter / receiver datapaths of the optical network
// interface (paper Fig. 2c/2d): path mux -> encoder bank -> serializer
// on the way out, deserializer -> decoder bank -> path mux on the way
// in.  One datapath instance models one wavelength's stream; the IP bus
// word is carved into as many code blocks as fit.
#ifndef PHOTECC_INTERFACE_DATAPATH_HPP
#define PHOTECC_INTERFACE_DATAPATH_HPP

#include <cstdint>
#include <vector>

#include "photecc/ecc/block_code.hpp"
#include "photecc/interface/serializer.hpp"

namespace photecc::interface {

/// Transmitter: encodes an Ndata-bit IP word and serialises it.
class TransmitterDatapath {
 public:
  /// `code` must evenly divide `n_data` blocks (e.g. H(7,4) with
  /// n_data = 64 uses 16 blocks); throws std::invalid_argument
  /// otherwise.
  TransmitterDatapath(ecc::BlockCodePtr code, std::size_t n_data = 64);

  [[nodiscard]] std::size_t n_data() const noexcept { return n_data_; }
  [[nodiscard]] std::size_t block_count() const noexcept { return blocks_; }

  /// Bits on the wire per IP word: block_count * n.
  [[nodiscard]] std::size_t frame_bits() const noexcept;

  /// Encodes and serialises one IP word (size must equal n_data).
  [[nodiscard]] std::vector<bool> transmit(const ecc::BitVec& word) const;

  /// Batch form: 64 IP words per slab through the encoder bank's batch
  /// kernels.  The serializer puts bit 0 first on the wire, so slab
  /// position order IS wire order — lane l of the result is exactly
  /// transmit() of lane l of `words`.
  [[nodiscard]] codec::BitSlab transmit_batch(
      const codec::BitSlab& words) const;

  [[nodiscard]] const ecc::BlockCode& code() const noexcept { return *code_; }

 private:
  ecc::BlockCodePtr code_;
  std::size_t n_data_;
  std::size_t blocks_;
};

/// Result of receiving one frame.
struct ReceiveResult {
  ecc::BitVec word;                 ///< recovered Ndata-bit IP word
  std::size_t corrected_blocks = 0; ///< blocks where a flip was repaired
  std::size_t detected_blocks = 0;  ///< blocks with a non-zero syndrome
};

/// Result of receiving one slab of frames (one frame per lane).  The
/// block counters aggregate over all lanes and blocks, matching the sum
/// of the per-lane scalar ReceiveResult counters.
struct BatchReceiveResult {
  codec::BitSlab words;                ///< recovered IP words, one per lane
  std::uint64_t corrected_blocks = 0;
  std::uint64_t detected_blocks = 0;
};

/// Receiver: deserialises a frame and decodes it back to the IP word.
class ReceiverDatapath {
 public:
  ReceiverDatapath(ecc::BlockCodePtr code, std::size_t n_data = 64);

  [[nodiscard]] std::size_t n_data() const noexcept { return n_data_; }
  [[nodiscard]] std::size_t frame_bits() const noexcept;

  /// Decodes one frame of wire bits (size must equal frame_bits()).
  [[nodiscard]] ReceiveResult receive(const std::vector<bool>& wire) const;

  /// Batch form of receive(): one frame_bits()-position wire slab to
  /// the recovered IP-word slab via the decoder bank's batch kernels;
  /// bit-identical per lane to the scalar path.
  [[nodiscard]] BatchReceiveResult receive_batch(
      const codec::BitSlab& wire) const;

  [[nodiscard]] const ecc::BlockCode& code() const noexcept { return *code_; }

 private:
  ecc::BlockCodePtr code_;
  std::size_t n_data_;
  std::size_t blocks_;
};

}  // namespace photecc::interface

#endif  // PHOTECC_INTERFACE_DATAPATH_HPP
