// CMOS technology parameters for the DSENT-style synthesis estimator.
//
// The paper synthesised its interfaces on 28 nm FDSOI (Table I).  We do
// not have a synthesis flow, so the estimator derives area/power/timing
// from gate counts and these per-cell constants.  fdsoi28() is
// calibrated against the paper's Table I rows (the bench
// bench_table1_synthesis prints estimate and reference side by side):
// the effective switched energies are in the attojoule range because
// the reference design is aggressively clock/enable gated — only the
// selected coding path toggles.
#ifndef PHOTECC_INTERFACE_TECHNOLOGY_HPP
#define PHOTECC_INTERFACE_TECHNOLOGY_HPP

#include <string>

namespace photecc::interface {

/// Per-cell constants of a standard-cell technology, DSENT-style.
struct TechnologyParams {
  std::string name = "28nm FDSOI";
  double feature_nm = 28.0;

  // ---- area ----
  /// Layout area of a two-input NAND-equivalent gate [um^2].
  double gate_area_um2 = 0.6;
  /// Gate equivalents of the basic cells.
  double xor_gate_equivalents = 2.2;
  double flop_gate_equivalents = 4.5;
  /// 2:1 mux in a serializer load path (compact, local routing).
  double mux2_gate_equivalents = 1.8;
  /// Per-bit gate equivalents of a wide path-select mux (dominated by
  /// routing; Table I's 64-bit 3:1 mux occupies ~12.7 um^2/bit).
  double path_mux_bit_gate_equivalents = 10.0;
  /// Fixed layout overhead per synthesised block [um^2] (well taps,
  /// enable/clock-gating cells, routing channels).
  double block_area_overhead_um2 = 12.0;

  // ---- energy (calibrated effective values, activity folded in) ----
  /// XOR2 energy per evaluated cycle [J].
  double xor_energy_j = 18e-18;
  /// Flip-flop energy per clock at the IP clock (clock tree share
  /// included) [J].
  double flop_energy_j = 4e-18;
  /// Flip-flop energy per clock in the SER/DES shift pipelines
  /// (fine-grained clock gating) [J].
  double serdes_flop_energy_j = 5e-18;
  /// Per-bit energy of a wide path-select mux per cycle [J].
  double path_mux_bit_energy_j = 10e-18;
  /// Fixed per-block energy per cycle (enable logic, local clocking) [J].
  double block_energy_j = 0.2e-15;

  // ---- leakage & timing ----
  /// Leakage per gate equivalent [W] (low-leakage 28 nm FDSOI).
  double leakage_per_gate_w = 0.01e-9;
  /// Intrinsic delay of one logic level (FO4-ish) [ps].
  double gate_delay_ps = 18.0;
  /// Fixed clock-to-q + setup overhead on registered paths [ps].
  double sequencing_overhead_ps = 45.0;
};

/// The paper's 28 nm FDSOI node, calibrated against Table I.
TechnologyParams fdsoi28();

/// Scaled nodes for technology-sensitivity ablations (first-order
/// Dennard-style scaling of area, energy, delay and leakage).
TechnologyParams scaled_node(double feature_nm);

}  // namespace photecc::interface

#endif  // PHOTECC_INTERFACE_TECHNOLOGY_HPP
