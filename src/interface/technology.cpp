#include "photecc/interface/technology.hpp"

#include <cmath>
#include <stdexcept>

namespace photecc::interface {

TechnologyParams fdsoi28() { return TechnologyParams{}; }

TechnologyParams scaled_node(double feature_nm) {
  if (feature_nm <= 0.0)
    throw std::invalid_argument("scaled_node: non-positive feature size");
  TechnologyParams base = fdsoi28();
  const double s = feature_nm / base.feature_nm;
  TechnologyParams out = base;
  out.name = std::to_string(static_cast<int>(feature_nm)) + "nm (scaled)";
  out.feature_nm = feature_nm;
  out.gate_area_um2 = base.gate_area_um2 * s * s;
  out.block_area_overhead_um2 = base.block_area_overhead_um2 * s * s;
  // Energy ~ C V^2: capacitance scales with s, V with sqrt(s).
  const double energy_scale = s * s;
  out.xor_energy_j = base.xor_energy_j * energy_scale;
  out.flop_energy_j = base.flop_energy_j * energy_scale;
  out.serdes_flop_energy_j = base.serdes_flop_energy_j * energy_scale;
  out.path_mux_bit_energy_j = base.path_mux_bit_energy_j * energy_scale;
  out.block_energy_j = base.block_energy_j * energy_scale;
  out.leakage_per_gate_w = base.leakage_per_gate_w * s;
  out.gate_delay_ps = base.gate_delay_ps * s;
  out.sequencing_overhead_ps = base.sequencing_overhead_ps * s;
  return out;
}

}  // namespace photecc::interface
