#include "photecc/interface/serializer.hpp"

#include <stdexcept>

namespace photecc::interface {

Serializer::Serializer(std::size_t frame_bits)
    : depth_(frame_bits), pipeline_(frame_bits, false) {
  if (frame_bits == 0)
    throw std::invalid_argument("Serializer: zero frame size");
}

void Serializer::load(const ecc::BitVec& frame) {
  if (frame.size() != depth_)
    throw std::invalid_argument("Serializer::load: frame size mismatch");
  for (std::size_t i = 0; i < depth_; ++i) pipeline_[i] = frame.get(i);
  remaining_ = depth_;
}

std::optional<bool> Serializer::shift_out() {
  if (remaining_ == 0) return std::nullopt;
  const bool bit = pipeline_[depth_ - remaining_];
  --remaining_;
  return bit;
}

std::vector<bool> Serializer::serialize(const ecc::BitVec& frame) {
  Serializer ser(frame.size());
  ser.load(frame);
  std::vector<bool> wire;
  wire.reserve(frame.size());
  while (auto bit = ser.shift_out()) wire.push_back(*bit);
  return wire;
}

Deserializer::Deserializer(std::size_t frame_bits)
    : depth_(frame_bits), pipeline_(frame_bits, false) {
  if (frame_bits == 0)
    throw std::invalid_argument("Deserializer: zero frame size");
}

std::optional<ecc::BitVec> Deserializer::shift_in(bool bit) {
  pipeline_[fill_++] = bit;
  if (fill_ < depth_) return std::nullopt;
  ecc::BitVec frame(depth_);
  for (std::size_t i = 0; i < depth_; ++i) frame.set(i, pipeline_[i]);
  fill_ = 0;
  return frame;
}

std::vector<ecc::BitVec> Deserializer::deserialize(
    const std::vector<bool>& wire, std::size_t frame_bits) {
  if (frame_bits == 0 || wire.size() % frame_bits != 0)
    throw std::invalid_argument(
        "Deserializer::deserialize: wire length not a frame multiple");
  Deserializer des(frame_bits);
  std::vector<ecc::BitVec> frames;
  frames.reserve(wire.size() / frame_bits);
  for (const bool bit : wire) {
    if (auto frame = des.shift_in(bit)) frames.push_back(std::move(*frame));
  }
  return frames;
}

}  // namespace photecc::interface
