#include "photecc/interface/datapath.hpp"

#include <bit>
#include <stdexcept>

namespace photecc::interface {
namespace {

std::size_t check_blocks(const ecc::BlockCode& code, std::size_t n_data) {
  const std::size_t k = code.message_length();
  if (k == 0 || n_data % k != 0)
    throw std::invalid_argument(
        "datapath: code message length must divide the IP bus width");
  return n_data / k;
}

}  // namespace

TransmitterDatapath::TransmitterDatapath(ecc::BlockCodePtr code,
                                         std::size_t n_data)
    : code_(std::move(code)), n_data_(n_data) {
  if (!code_) throw std::invalid_argument("TransmitterDatapath: null code");
  blocks_ = check_blocks(*code_, n_data_);
}

std::size_t TransmitterDatapath::frame_bits() const noexcept {
  return blocks_ * code_->block_length();
}

std::vector<bool> TransmitterDatapath::transmit(
    const ecc::BitVec& word) const {
  if (word.size() != n_data_)
    throw std::invalid_argument("transmit: word size mismatch");
  const std::size_t k = code_->message_length();
  ecc::BitVec frame(0);
  for (std::size_t b = 0; b < blocks_; ++b) {
    const ecc::BitVec message = word.slice(b * k, k);
    frame = frame.concat(code_->encode(message));
  }
  return Serializer::serialize(frame);
}

codec::BitSlab TransmitterDatapath::transmit_batch(
    const codec::BitSlab& words) const {
  if (words.bits() != n_data_)
    throw std::invalid_argument("transmit_batch: word size mismatch");
  const std::size_t k = code_->message_length();
  const std::size_t n = code_->block_length();
  codec::BitSlab frame(frame_bits(), words.lanes());
  for (std::size_t b = 0; b < blocks_; ++b)
    frame.paste(b * n, code_->encode_batch(words.slice(b * k, k)));
  // Serializer order is bit 0 first, so the frame slab already is the
  // wire slab.
  return frame;
}

ReceiverDatapath::ReceiverDatapath(ecc::BlockCodePtr code,
                                   std::size_t n_data)
    : code_(std::move(code)), n_data_(n_data) {
  if (!code_) throw std::invalid_argument("ReceiverDatapath: null code");
  blocks_ = check_blocks(*code_, n_data_);
}

std::size_t ReceiverDatapath::frame_bits() const noexcept {
  return blocks_ * code_->block_length();
}

ReceiveResult ReceiverDatapath::receive(const std::vector<bool>& wire) const {
  if (wire.size() != frame_bits())
    throw std::invalid_argument("receive: frame size mismatch");
  const std::size_t n = code_->block_length();
  const auto frames = Deserializer::deserialize(wire, n);
  ReceiveResult result;
  result.word = ecc::BitVec(0);
  for (const auto& block : frames) {
    ecc::DecodeResult decoded = code_->decode(block);
    if (decoded.error_detected) ++result.detected_blocks;
    if (decoded.corrected) ++result.corrected_blocks;
    result.word = result.word.concat(decoded.message);
  }
  return result;
}

BatchReceiveResult ReceiverDatapath::receive_batch(
    const codec::BitSlab& wire) const {
  if (wire.bits() != frame_bits())
    throw std::invalid_argument("receive_batch: frame size mismatch");
  const std::size_t k = code_->message_length();
  const std::size_t n = code_->block_length();
  BatchReceiveResult result;
  result.words = codec::BitSlab(n_data_, wire.lanes());
  for (std::size_t b = 0; b < blocks_; ++b) {
    const ecc::BatchDecodeResult decoded =
        code_->decode_batch(wire.slice(b * n, n));
    result.words.paste(b * k, decoded.messages);
    result.detected_blocks +=
        static_cast<std::uint64_t>(std::popcount(decoded.error_detected));
    result.corrected_blocks +=
        static_cast<std::uint64_t>(std::popcount(decoded.corrected));
  }
  return result;
}

}  // namespace photecc::interface
