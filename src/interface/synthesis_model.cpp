#include "photecc/interface/synthesis_model.hpp"

#include <cmath>
#include <stdexcept>

#include "photecc/ecc/hamming.hpp"

namespace photecc::interface {

std::string to_string(InterfaceMode mode) {
  switch (mode) {
    case InterfaceMode::kUncoded: return "w/o ECC";
    case InterfaceMode::kHamming74: return "H(7,4)";
    case InterfaceMode::kHamming7164: return "H(71,64)";
  }
  throw std::logic_error("to_string: bad InterfaceMode");
}

double InterfaceSynthesis::dynamic_uw(InterfaceMode mode) const {
  switch (mode) {
    case InterfaceMode::kUncoded: return dynamic_uw_uncoded;
    case InterfaceMode::kHamming74: return dynamic_uw_h74;
    case InterfaceMode::kHamming7164: return dynamic_uw_h7164;
  }
  throw std::logic_error("dynamic_uw: bad InterfaceMode");
}

double InterfacePair::total_power_w(InterfaceMode mode) const {
  return (transmitter.dynamic_uw(mode) + receiver.dynamic_uw(mode)) * 1e-6;
}

double InterfacePair::enc_dec_power_per_wavelength_w(
    InterfaceMode mode, std::size_t wavelengths) const {
  if (wavelengths == 0)
    throw std::invalid_argument(
        "enc_dec_power_per_wavelength_w: zero wavelengths");
  return total_power_w(mode) / static_cast<double>(wavelengths);
}

InterfacePair table1_reference() {
  InterfacePair pair;
  // --- Transmitter (Table I, upper half) -----------------------------
  pair.transmitter.blocks = {
      {"1-bit MUX (3 to 1)", 14.0, 80.0, 0.2, 0.23},
      {"H(7,4) coders (x16)", 551.0, 210.0, 1.7, 3.13},
      {"H(71,64) coder", 490.0, 350.0, 1.6, 2.51},
      {"112-bits SER, H(7,4)", 433.0, 70.0, 6.5, 6.21},
      {"71-bits SER, H(71,64)", 276.0, 70.0, 4.1, 3.24},
      {"64-bits SER, w/o ECC", 249.0, 70.0, 3.6, 2.93},
  };
  pair.transmitter.total_area_um2 = 2013.0;
  pair.transmitter.dynamic_uw_h74 = 9.57;
  pair.transmitter.dynamic_uw_h7164 = 5.99;
  pair.transmitter.dynamic_uw_uncoded = 3.16;

  // --- Receiver (Table I, lower half) --------------------------------
  pair.receiver.blocks = {
      {"64-bits MUX (3 to 1)", 815.0, 80.0, 10.8, 1.55},
      {"H(7,4) decoders (x16)", 783.0, 300.0, 2.5, 3.80},
      {"H(71,64) decoder", 648.0, 570.0, 2.2, 2.63},
      {"112-bits DESER, H(7,4)", 365.0, 60.0, 5.5, 4.75},
      {"71-bits DESER, H(71,64)", 231.0, 60.0, 3.5, 3.02},
      {"64-bits DESER, w/o ECC", 208.0, 60.0, 3.0, 2.75},
  };
  pair.receiver.total_area_um2 = 3050.0;
  pair.receiver.dynamic_uw_h74 = 10.10;
  pair.receiver.dynamic_uw_h7164 = 7.21;
  pair.receiver.dynamic_uw_uncoded = 4.29;
  return pair;
}

// ---------------------------------------------------------------------
// SynthesisEstimator
// ---------------------------------------------------------------------

namespace {

/// XOR gate count of a code's encoder/decoder, taken from the concrete
/// generator structure when available.
struct CodecGates {
  double encoder_xors = 0.0;
  double decoder_xors = 0.0;
};

CodecGates codec_gates(const ecc::BlockCode& code) {
  CodecGates gates;
  if (const auto* hamming = dynamic_cast<const ecc::HammingCode*>(&code)) {
    gates.encoder_xors = static_cast<double>(hamming->encoder_xor_gates());
    gates.decoder_xors = static_cast<double>(hamming->decoder_xor_gates());
    return gates;
  }
  if (const auto* shortened =
          dynamic_cast<const ecc::ShortenedHammingCode*>(&code)) {
    gates.encoder_xors =
        static_cast<double>(shortened->encoder_xor_gates());
    gates.decoder_xors =
        static_cast<double>(shortened->decoder_xor_gates());
    return gates;
  }
  // Generic fallback: each parity bit XORs about half the message.
  const double n = static_cast<double>(code.block_length());
  const double k = static_cast<double>(code.message_length());
  const double parity = n - k;
  gates.encoder_xors = parity * k / 2.0;
  gates.decoder_xors = parity * n / 2.0 + k;
  return gates;
}

}  // namespace

SynthesisEstimator::SynthesisEstimator(TechnologyParams tech,
                                       InterfaceClocks clocks)
    : tech_(std::move(tech)), clocks_(clocks) {
  if (clocks_.f_ip_hz <= 0.0 || clocks_.f_mod_hz <= 0.0 ||
      clocks_.n_data == 0)
    throw std::invalid_argument("SynthesisEstimator: bad clocks");
}

BlockSynthesis SynthesisEstimator::from_gates(std::string name,
                                              double gate_equivalents,
                                              double energy_per_cycle_j,
                                              double logic_depth,
                                              double clock_hz) const {
  BlockSynthesis block;
  block.name = std::move(name);
  block.area_um2 = gate_equivalents * tech_.gate_area_um2 +
                   tech_.block_area_overhead_um2;
  block.critical_path_ps =
      tech_.sequencing_overhead_ps + logic_depth * tech_.gate_delay_ps;
  block.static_nw = gate_equivalents * tech_.leakage_per_gate_w * 1e9;
  block.dynamic_uw = energy_per_cycle_j * clock_hz * 1e6;
  return block;
}

BlockSynthesis SynthesisEstimator::encoder_bank(
    const ecc::BlockCode& code) const {
  const std::size_t k = code.message_length();
  const std::size_t n = code.block_length();
  const double banks =
      std::ceil(static_cast<double>(clocks_.n_data) /
                static_cast<double>(k));
  const CodecGates gates = codec_gates(code);
  const double ge =
      banks * (gates.encoder_xors * tech_.xor_gate_equivalents +
               static_cast<double>(n) * tech_.flop_gate_equivalents);
  const double energy =
      banks * (gates.encoder_xors * tech_.xor_energy_j +
               static_cast<double>(n) * tech_.flop_energy_j +
               tech_.block_energy_j);
  const double depth =
      std::ceil(std::log2(std::max<double>(2.0, static_cast<double>(k))));
  BlockSynthesis block = from_gates(
      code.name() + " coder bank x" +
          std::to_string(static_cast<int>(banks)),
      ge, energy, depth, clocks_.f_ip_hz);
  // Each bank instance pays its own layout overhead.
  block.area_um2 += (banks - 1.0) * tech_.block_area_overhead_um2;
  return block;
}

BlockSynthesis SynthesisEstimator::decoder_bank(
    const ecc::BlockCode& code) const {
  const std::size_t k = code.message_length();
  const std::size_t n = code.block_length();
  const double banks =
      std::ceil(static_cast<double>(clocks_.n_data) /
                static_cast<double>(k));
  const CodecGates gates = codec_gates(code);
  // Syndrome XOR tree + an m->n position decoder (~1.2 GE / position,
  // charged at half an XOR's energy) + output register over k bits.
  const double decode_ge = static_cast<double>(n) * 1.2;
  const double ge =
      banks * (gates.decoder_xors * tech_.xor_gate_equivalents + decode_ge +
               static_cast<double>(k) * tech_.flop_gate_equivalents);
  const double energy =
      banks * (gates.decoder_xors * tech_.xor_energy_j +
               static_cast<double>(n) * 0.5 * tech_.xor_energy_j +
               static_cast<double>(k) * tech_.flop_energy_j +
               tech_.block_energy_j);
  const double depth =
      std::ceil(std::log2(std::max<double>(2.0, static_cast<double>(n)))) +
      2.0;  // syndrome tree + position decode + correction XOR
  BlockSynthesis block = from_gates(
      code.name() + " decoder bank x" +
          std::to_string(static_cast<int>(banks)),
      ge, energy, depth, clocks_.f_ip_hz);
  block.area_um2 += (banks - 1.0) * tech_.block_area_overhead_um2;
  return block;
}

BlockSynthesis SynthesisEstimator::serializer(std::size_t frame_bits) const {
  // Register pipeline with a depth equal to the frame size plus the 2:1
  // load muxes in front of every register (paper Section IV-C).  The
  // shift flops clock at Fmod; the load muxes evaluate at the frame
  // rate (~FIP).
  const double bits = static_cast<double>(frame_bits);
  const double ge = bits * (tech_.flop_gate_equivalents +
                            tech_.mux2_gate_equivalents);
  BlockSynthesis block =
      from_gates(std::to_string(frame_bits) + "-bit SER", ge, 0.0, 1.0,
                 clocks_.f_mod_hz);
  block.dynamic_uw =
      (bits * tech_.serdes_flop_energy_j * clocks_.f_mod_hz +
       (bits * tech_.path_mux_bit_energy_j + tech_.block_energy_j) *
           clocks_.f_ip_hz) *
      1e6;
  return block;
}

BlockSynthesis SynthesisEstimator::deserializer(
    std::size_t frame_bits) const {
  const double bits = static_cast<double>(frame_bits);
  const double ge = bits * tech_.flop_gate_equivalents;
  BlockSynthesis block =
      from_gates(std::to_string(frame_bits) + "-bit DESER", ge, 0.0, 1.0,
                 clocks_.f_mod_hz);
  block.dynamic_uw =
      (bits * tech_.serdes_flop_energy_j * clocks_.f_mod_hz +
       tech_.block_energy_j * clocks_.f_ip_hz) *
      1e6;
  return block;
}

BlockSynthesis SynthesisEstimator::path_mux(std::size_t ways,
                                            std::size_t width) const {
  if (ways < 2) throw std::invalid_argument("path_mux: need >= 2 ways");
  const double bits = static_cast<double>(width);
  const double stages = static_cast<double>(ways - 1);
  const double ge =
      bits * stages * tech_.path_mux_bit_gate_equivalents;
  const double energy = bits * stages * tech_.path_mux_bit_energy_j +
                        tech_.block_energy_j;
  return from_gates(std::to_string(width) + "-bit MUX (" +
                        std::to_string(ways) + " to 1)",
                    ge, energy,
                    std::ceil(std::log2(static_cast<double>(ways))),
                    clocks_.f_ip_hz);
}

InterfaceSynthesis SynthesisEstimator::transmitter() const {
  const ecc::HammingCode h74(3);
  const ecc::ShortenedHammingCode h7164(7, 56);
  InterfaceSynthesis tx;
  const BlockSynthesis mux = path_mux(3, 1);
  const BlockSynthesis enc74 = encoder_bank(h74);
  const BlockSynthesis enc7164 = encoder_bank(h7164);
  const BlockSynthesis ser112 = serializer(112);
  const BlockSynthesis ser71 = serializer(71);
  const BlockSynthesis ser64 = serializer(64);
  tx.blocks = {mux, enc74, enc7164, ser112, ser71, ser64};
  for (const auto& b : tx.blocks) tx.total_area_um2 += b.area_um2;
  tx.dynamic_uw_h74 = mux.dynamic_uw + enc74.dynamic_uw + ser112.dynamic_uw;
  tx.dynamic_uw_h7164 =
      mux.dynamic_uw + enc7164.dynamic_uw + ser71.dynamic_uw;
  tx.dynamic_uw_uncoded = mux.dynamic_uw + ser64.dynamic_uw;
  return tx;
}

InterfaceSynthesis SynthesisEstimator::receiver() const {
  const ecc::HammingCode h74(3);
  const ecc::ShortenedHammingCode h7164(7, 56);
  InterfaceSynthesis rx;
  const BlockSynthesis mux = path_mux(3, clocks_.n_data);
  const BlockSynthesis dec74 = decoder_bank(h74);
  const BlockSynthesis dec7164 = decoder_bank(h7164);
  const BlockSynthesis des112 = deserializer(112);
  const BlockSynthesis des71 = deserializer(71);
  const BlockSynthesis des64 = deserializer(64);
  rx.blocks = {mux, dec74, dec7164, des112, des71, des64};
  for (const auto& b : rx.blocks) rx.total_area_um2 += b.area_um2;
  rx.dynamic_uw_h74 = mux.dynamic_uw + dec74.dynamic_uw + des112.dynamic_uw;
  rx.dynamic_uw_h7164 =
      mux.dynamic_uw + dec7164.dynamic_uw + des71.dynamic_uw;
  rx.dynamic_uw_uncoded = mux.dynamic_uw + des64.dynamic_uw;
  return rx;
}

InterfacePair SynthesisEstimator::interface_pair() const {
  return InterfacePair{transmitter(), receiver()};
}

}  // namespace photecc::interface
