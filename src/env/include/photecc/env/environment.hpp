// photecc::env — the time-varying operating environment of the optical
// layer.
//
// The paper freezes the electrical-layer activity at one value (25 %)
// and evaluates every scheme at that single operating point.  Its core
// claim, however, is dynamic: coding buys *thermal headroom*, and
// headroom only matters when activity (and with it the laser's
// deliverable optical power) moves at runtime.  This module makes the
// environment a first-class, time-varying quantity every layer above
// photonics can share:
//
//   * EnvironmentSample    — (time, activity) pair, the unit every
//                            solver call consumes.
//   * EnvironmentTimeline  — a declarative piecewise activity process:
//                            constant, step, linear ramp, cyclic or
//                            one-shot phase schedules, and a
//                            self-heating mode whose activity is driven
//                            by channel busy time through a thermal RC
//                            time constant.
//   * ThermalIntegrator    — the stateful closed-loop sampler: a
//                            simulator advances it event by event,
//                            feeding measured busy fractions back into
//                            the self-heating dynamics.
//
// Layering: env sits directly above math; link resolves its deprecated
// MwsrParams::chip_activity alias into a constant timeline here, and
// core/noc/explore/spec treat timelines as plain declarative data.
#ifndef PHOTECC_ENV_ENVIRONMENT_HPP
#define PHOTECC_ENV_ENVIRONMENT_HPP

#include <cstddef>
#include <string>
#include <vector>

namespace photecc::env {

/// One sample of the environment: the electrical-layer activity factor
/// in [0, 1] observed at `time_s`.  This is the unit the link solver
/// consumes — everything a laser model needs to derate itself.
struct EnvironmentSample {
  double time_s = 0.0;
  double activity = 0.25;

  [[nodiscard]] bool operator==(const EnvironmentSample&) const = default;
};

/// One phase of a piecewise-constant activity schedule.
struct EnvironmentPhase {
  double duration_s = 1e-6;
  double activity = 0.25;
  /// Display label carried into per-phase statistics ("compute",
  /// "burst"); empty labels render as the phase index.
  std::string label;

  [[nodiscard]] bool operator==(const EnvironmentPhase&) const = default;
};

/// A declarative piecewise activity process.  Construct through the
/// named factories; sample_at(t) is a pure function (the self-heating
/// kind needs the stateful ThermalIntegrator to close the loop — its
/// pure sample is the zero-traffic baseline).
class EnvironmentTimeline {
 public:
  enum class Kind {
    kConstant,     ///< activity fixed for all t (the paper's setup)
    kStep,         ///< before-activity until at_s, after-activity beyond
    kRamp,         ///< linear ramp between two activities over [t0, t1]
    kPhases,       ///< piecewise-constant schedule, cyclic or one-shot
    kSelfHeating,  ///< busy-time-driven activity with an RC constant
  };

  /// Default: the paper's frozen 25 % activity.
  EnvironmentTimeline() = default;

  /// Activity fixed at `activity` for all time.
  [[nodiscard]] static EnvironmentTimeline constant(double activity);

  /// `from` until `at_s`, `to` at and after `at_s`.
  [[nodiscard]] static EnvironmentTimeline step(double at_s, double from,
                                                double to);

  /// `from` before `start_s`, linear to `to` over [start_s, end_s],
  /// `to` afterwards.  Requires end_s > start_s.
  [[nodiscard]] static EnvironmentTimeline ramp(double start_s, double end_s,
                                                double from, double to);

  /// Piecewise-constant schedule.  With `cyclic` the schedule repeats
  /// for all t (a diurnal/application loop); otherwise the last phase's
  /// activity holds beyond the schedule end.
  [[nodiscard]] static EnvironmentTimeline phases(
      std::vector<EnvironmentPhase> schedule, bool cyclic = true);

  /// Self-heating feedback: activity relaxes toward
  ///   baseline + busy_gain * busy_fraction
  /// with time constant `tau_s` (thermal RC).  The pure sample_at()
  /// returns the zero-traffic baseline; ThermalIntegrator closes the
  /// loop with measured busy fractions.
  [[nodiscard]] static EnvironmentTimeline self_heating(double baseline,
                                                        double busy_gain,
                                                        double tau_s);

  [[nodiscard]] Kind kind() const noexcept { return kind_; }

  /// True for the kinds whose sample never changes with time — the
  /// static special case every pre-environment code path assumed.
  [[nodiscard]] bool is_constant() const noexcept {
    return kind_ == Kind::kConstant;
  }

  /// The open-loop activity at time `t` (clamped to [0, 1]).  Self-
  /// heating returns its baseline (zero traffic); negative t samples
  /// like t = 0.
  [[nodiscard]] EnvironmentSample sample_at(double t) const;

  /// The t -> infinity limit of the open-loop activity: the value a
  /// static analysis (the AB5 table) should be run at.  Cyclic phase
  /// schedules have no limit and report their time-weighted mean.
  [[nodiscard]] double steady_state_activity() const;

  /// Phase boundaries of the timeline over [0, horizon_s], for
  /// per-phase statistics: constant/self-heating contribute one phase,
  /// a step two, a ramp up to three (pre / ramp / post), and a phase
  /// schedule one per (repeated) phase.  Boundaries are strictly
  /// increasing; the last entry ends at horizon_s.
  struct PhaseWindow {
    std::string label;
    double start_s = 0.0;
    double end_s = 0.0;
  };
  [[nodiscard]] std::vector<PhaseWindow> phase_windows(
      double horizon_s) const;

  /// Compact display label, used for grid-axis labels and reports:
  /// "constant@0.25", "step@1.0e-06:0.25->0.75", "ramp:0.25->1",
  /// "phases x3 (cyclic)", "self-heating:0.25+0.5b/tau=1.0e-06".
  [[nodiscard]] std::string label() const;

  // Parameter accessors (meaningful per kind; spec serialization).
  [[nodiscard]] double constant_activity() const noexcept { return from_; }
  [[nodiscard]] double step_at_s() const noexcept { return start_s_; }
  [[nodiscard]] double ramp_start_s() const noexcept { return start_s_; }
  [[nodiscard]] double ramp_end_s() const noexcept { return end_s_; }
  [[nodiscard]] double from_activity() const noexcept { return from_; }
  [[nodiscard]] double to_activity() const noexcept { return to_; }
  [[nodiscard]] const std::vector<EnvironmentPhase>& phase_schedule()
      const noexcept {
    return phases_;
  }
  [[nodiscard]] bool cyclic() const noexcept { return cyclic_; }
  [[nodiscard]] double baseline_activity() const noexcept { return from_; }
  [[nodiscard]] double busy_gain() const noexcept { return to_; }
  [[nodiscard]] double tau_s() const noexcept { return tau_s_; }

  [[nodiscard]] bool operator==(const EnvironmentTimeline&) const = default;

 private:
  Kind kind_ = Kind::kConstant;
  // Field reuse across kinds (see the accessors above): from_ holds the
  // constant / pre-step / ramp-start / self-heating-baseline activity,
  // to_ the post-step / ramp-end activity or the self-heating busy
  // gain.
  double from_ = 0.25;
  double to_ = 0.25;
  double start_s_ = 0.0;
  double end_s_ = 0.0;
  double tau_s_ = 1e-6;
  bool cyclic_ = true;
  std::vector<EnvironmentPhase> phases_;
};

/// The stateful closed-loop sampler.  A discrete-event simulator owns
/// one integrator per channel and advances it event by event with the
/// busy fraction it measured since the previous advance.  Declarative
/// timelines simply sample; the self-heating kind integrates the first-
/// order thermal response
///
///   a(t + dt) = target + (a(t) - target) * exp(-dt / tau),
///   target    = baseline + busy_gain * busy_fraction
///
/// so a streaming workload that keeps the channel busy drags its own
/// activity — and with it the laser derating — upward over time.
class ThermalIntegrator {
 public:
  explicit ThermalIntegrator(EnvironmentTimeline timeline);

  /// Advances to time `t` (>= the current time; earlier times return
  /// the current sample unchanged) given the fraction of [current, t]
  /// the channel spent busy, and returns the sample at `t`.
  EnvironmentSample advance_to(double t, double busy_fraction);

  /// Same, under a guaranteed wire-duty bound (see
  /// ecc::BlockCode::transmit_duty_bound): a cooling code that lights
  /// at most a `duty_bound` fraction of the wires heats the array as if
  /// the channel were only `busy_fraction * duty_bound` busy.
  /// duty_bound == 1.0 is bit-identical to the two-argument overload.
  EnvironmentSample advance_to(double t, double busy_fraction,
                               double duty_bound);

  [[nodiscard]] const EnvironmentSample& current() const noexcept {
    return current_;
  }
  [[nodiscard]] const EnvironmentTimeline& timeline() const noexcept {
    return timeline_;
  }

 private:
  EnvironmentTimeline timeline_;
  EnvironmentSample current_;
};

/// Shared entry point for every layer that needs "the activity now":
/// samples `timeline` at `t`.  Kept as a free function so call sites
/// read env::sample_at(timeline, t) — one grep finds every
/// environment consumer.
[[nodiscard]] inline EnvironmentSample sample_at(
    const EnvironmentTimeline& timeline, double t) {
  return timeline.sample_at(t);
}

}  // namespace photecc::env

#endif  // PHOTECC_ENV_ENVIRONMENT_HPP
