#include "photecc/env/environment.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "photecc/math/table.hpp"

namespace photecc::env {

namespace {

double clamp_activity(double a) { return std::clamp(a, 0.0, 1.0); }

void check_activity(double a, const char* what) {
  if (!std::isfinite(a) || a < 0.0 || a > 1.0)
    throw std::invalid_argument(std::string("EnvironmentTimeline: ") + what +
                                " outside [0, 1]");
}

void check_time(double t, const char* what) {
  if (!std::isfinite(t) || t < 0.0)
    throw std::invalid_argument(std::string("EnvironmentTimeline: ") + what +
                                " must be finite and >= 0");
}

}  // namespace

EnvironmentTimeline EnvironmentTimeline::constant(double activity) {
  check_activity(activity, "constant activity");
  EnvironmentTimeline t;
  t.kind_ = Kind::kConstant;
  t.from_ = t.to_ = activity;
  return t;
}

EnvironmentTimeline EnvironmentTimeline::step(double at_s, double from,
                                              double to) {
  check_time(at_s, "step time");
  check_activity(from, "step 'from' activity");
  check_activity(to, "step 'to' activity");
  EnvironmentTimeline t;
  t.kind_ = Kind::kStep;
  t.start_s_ = at_s;
  t.from_ = from;
  t.to_ = to;
  return t;
}

EnvironmentTimeline EnvironmentTimeline::ramp(double start_s, double end_s,
                                              double from, double to) {
  check_time(start_s, "ramp start");
  check_time(end_s, "ramp end");
  if (end_s <= start_s)
    throw std::invalid_argument("EnvironmentTimeline: ramp end <= start");
  check_activity(from, "ramp 'from' activity");
  check_activity(to, "ramp 'to' activity");
  EnvironmentTimeline t;
  t.kind_ = Kind::kRamp;
  t.start_s_ = start_s;
  t.end_s_ = end_s;
  t.from_ = from;
  t.to_ = to;
  return t;
}

EnvironmentTimeline EnvironmentTimeline::phases(
    std::vector<EnvironmentPhase> schedule, bool cyclic) {
  if (schedule.empty())
    throw std::invalid_argument("EnvironmentTimeline: empty phase schedule");
  for (const EnvironmentPhase& phase : schedule) {
    if (!std::isfinite(phase.duration_s) || phase.duration_s <= 0.0)
      throw std::invalid_argument(
          "EnvironmentTimeline: phase duration must be > 0");
    check_activity(phase.activity, "phase activity");
  }
  EnvironmentTimeline t;
  t.kind_ = Kind::kPhases;
  t.cyclic_ = cyclic;
  t.phases_ = std::move(schedule);
  t.from_ = t.to_ = t.phases_.front().activity;
  return t;
}

EnvironmentTimeline EnvironmentTimeline::self_heating(double baseline,
                                                      double busy_gain,
                                                      double tau_s) {
  check_activity(baseline, "self-heating baseline");
  if (!std::isfinite(busy_gain) || busy_gain < 0.0 || busy_gain > 1.0)
    throw std::invalid_argument(
        "EnvironmentTimeline: self-heating busy gain outside [0, 1]");
  if (!std::isfinite(tau_s) || tau_s <= 0.0)
    throw std::invalid_argument(
        "EnvironmentTimeline: self-heating tau must be > 0");
  EnvironmentTimeline t;
  t.kind_ = Kind::kSelfHeating;
  t.from_ = baseline;
  t.to_ = busy_gain;
  t.tau_s_ = tau_s;
  return t;
}

EnvironmentSample EnvironmentTimeline::sample_at(double t) const {
  const double time = std::max(t, 0.0);
  double activity = from_;
  switch (kind_) {
    case Kind::kConstant:
    case Kind::kSelfHeating:
      activity = from_;
      break;
    case Kind::kStep:
      activity = time < start_s_ ? from_ : to_;
      break;
    case Kind::kRamp:
      if (time <= start_s_) {
        activity = from_;
      } else if (time >= end_s_) {
        activity = to_;
      } else {
        const double x = (time - start_s_) / (end_s_ - start_s_);
        activity = from_ + x * (to_ - from_);
      }
      break;
    case Kind::kPhases: {
      double total = 0.0;
      for (const EnvironmentPhase& phase : phases_) total += phase.duration_s;
      double local = time;
      if (cyclic_) {
        local = std::fmod(time, total);
      } else if (local >= total) {
        activity = phases_.back().activity;
        break;
      }
      for (const EnvironmentPhase& phase : phases_) {
        if (local < phase.duration_s) {
          activity = phase.activity;
          break;
        }
        local -= phase.duration_s;
        activity = phases_.back().activity;  // numeric-tail fallback
      }
      break;
    }
  }
  return {time, clamp_activity(activity)};
}

double EnvironmentTimeline::steady_state_activity() const {
  switch (kind_) {
    case Kind::kConstant:
    case Kind::kSelfHeating:
      return from_;
    case Kind::kStep:
    case Kind::kRamp:
      return to_;
    case Kind::kPhases: {
      if (!cyclic_) return phases_.back().activity;
      double total = 0.0;
      double weighted = 0.0;
      for (const EnvironmentPhase& phase : phases_) {
        total += phase.duration_s;
        weighted += phase.duration_s * phase.activity;
      }
      return weighted / total;
    }
  }
  return from_;
}

std::vector<EnvironmentTimeline::PhaseWindow>
EnvironmentTimeline::phase_windows(double horizon_s) const {
  if (!std::isfinite(horizon_s) || horizon_s <= 0.0)
    throw std::invalid_argument(
        "EnvironmentTimeline::phase_windows: non-positive horizon");
  std::vector<PhaseWindow> windows;
  const auto push = [&](std::string label, double start, double end) {
    if (end > start && start < horizon_s)
      windows.push_back({std::move(label), start, std::min(end, horizon_s)});
  };
  switch (kind_) {
    case Kind::kConstant:
      push("constant", 0.0, horizon_s);
      break;
    case Kind::kSelfHeating:
      push("self-heating", 0.0, horizon_s);
      break;
    case Kind::kStep:
      push("before", 0.0, start_s_);
      push("after", start_s_, horizon_s);
      break;
    case Kind::kRamp:
      push("pre", 0.0, start_s_);
      push("ramp", start_s_, end_s_);
      push("post", end_s_, horizon_s);
      break;
    case Kind::kPhases: {
      // Bound materialisation: a cyclic schedule of very short phases
      // over a long horizon would otherwise produce horizon/duration
      // windows.  Past the cap the remainder is one merged window.
      constexpr std::size_t kMaxWindows = 1024;
      double t = 0.0;
      std::size_t i = 0;
      std::size_t repeat = 0;
      while (t < horizon_s) {
        if (windows.size() + 1 >= kMaxWindows) {
          push("rest", t, horizon_s);
          break;
        }
        const EnvironmentPhase& phase = phases_[i];
        std::string label = phase.label.empty()
                                ? "phase" + std::to_string(i)
                                : phase.label;
        if (repeat > 0) label += "#" + std::to_string(repeat);
        push(std::move(label), t, t + phase.duration_s);
        t += phase.duration_s;
        ++i;
        if (i == phases_.size()) {
          if (!cyclic_) {
            push("tail", t, horizon_s);
            break;
          }
          i = 0;
          ++repeat;
        }
      }
      break;
    }
  }
  if (windows.empty()) windows.push_back({"all", 0.0, horizon_s});
  windows.back().end_s = horizon_s;
  return windows;
}

std::string EnvironmentTimeline::label() const {
  const auto activity = [](double a) { return math::format_fixed(a, 2); };
  switch (kind_) {
    case Kind::kConstant:
      return "constant@" + activity(from_);
    case Kind::kStep:
      return "step@" + math::format_sci(start_s_, 1) + ":" + activity(from_) +
             "->" + activity(to_);
    case Kind::kRamp:
      return "ramp@" + math::format_sci(start_s_, 1) + ".." +
             math::format_sci(end_s_, 1) + ":" + activity(from_) + "->" +
             activity(to_);
    case Kind::kPhases: {
      double total = 0.0;
      double weighted = 0.0;
      for (const EnvironmentPhase& phase : phases_) {
        total += phase.duration_s;
        weighted += phase.duration_s * phase.activity;
      }
      return "phases x" + std::to_string(phases_.size()) + "/" +
             math::format_sci(total, 1) + ":" +
             activity(phases_.front().activity) + "..mean" +
             activity(weighted / total) + (cyclic_ ? " (cyclic)" : "");
    }
    case Kind::kSelfHeating:
      return "self-heating:" + activity(from_) + "+" + activity(to_) +
             "b/tau=" + math::format_sci(tau_s_, 1);
  }
  return "environment";
}

ThermalIntegrator::ThermalIntegrator(EnvironmentTimeline timeline)
    : timeline_(std::move(timeline)),
      current_(timeline_.sample_at(0.0)) {}

EnvironmentSample ThermalIntegrator::advance_to(double t,
                                                double busy_fraction,
                                                double duty_bound) {
  // The branch keeps duty_bound == 1.0 bit-identical to the two-arg
  // overload (no multiply on the legacy path).
  return advance_to(t, duty_bound < 1.0
                           ? busy_fraction * std::clamp(duty_bound, 0.0, 1.0)
                           : busy_fraction);
}

EnvironmentSample ThermalIntegrator::advance_to(double t,
                                                double busy_fraction) {
  if (!(t > current_.time_s)) return current_;
  if (timeline_.kind() != EnvironmentTimeline::Kind::kSelfHeating) {
    current_ = timeline_.sample_at(t);
    return current_;
  }
  const double busy = std::clamp(busy_fraction, 0.0, 1.0);
  const double target = std::clamp(
      timeline_.baseline_activity() + timeline_.busy_gain() * busy, 0.0,
      1.0);
  const double dt = t - current_.time_s;
  const double decayed =
      target + (current_.activity - target) * std::exp(-dt / timeline_.tau_s());
  current_ = {t, std::clamp(decayed, 0.0, 1.0)};
  return current_;
}

}  // namespace photecc::env
