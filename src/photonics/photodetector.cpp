#include "photecc/photonics/photodetector.hpp"

#include <algorithm>
#include <stdexcept>

#include "photecc/math/units.hpp"

namespace photecc::photonics {

Photodetector::Photodetector(const PhotodetectorParams& params)
    : params_(params) {
  if (params.responsivity_a_per_w <= 0.0)
    throw std::invalid_argument("Photodetector: non-positive responsivity");
  if (params.dark_current_a <= 0.0)
    throw std::invalid_argument("Photodetector: non-positive dark current");
  if (params.coupling_loss_db < 0.0)
    throw std::invalid_argument("Photodetector: negative coupling loss");
}

double Photodetector::snr(double op_signal_w, double op_crosstalk_w) const {
  if (op_signal_w < 0.0 || op_crosstalk_w < 0.0)
    throw std::invalid_argument("Photodetector::snr: negative power");
  const double numerator =
      params_.responsivity_a_per_w * (op_signal_w - op_crosstalk_w);
  return std::max(0.0, numerator / params_.dark_current_a);
}

double Photodetector::required_signal_power(double snr_target,
                                            double op_crosstalk_w) const {
  if (snr_target < 0.0)
    throw std::invalid_argument(
        "Photodetector::required_signal_power: negative SNR");
  if (op_crosstalk_w < 0.0)
    throw std::invalid_argument(
        "Photodetector::required_signal_power: negative crosstalk");
  return snr_target * params_.dark_current_a / params_.responsivity_a_per_w +
         op_crosstalk_w;
}

double Photodetector::pam_boundary_snr(double op_signal_w,
                                       double op_crosstalk_w,
                                       std::size_t levels) const {
  if (levels < 2)
    throw std::invalid_argument(
        "Photodetector::pam_boundary_snr: levels < 2");
  const double sub_eyes = static_cast<double>(levels - 1);
  return snr(op_signal_w, op_crosstalk_w) / (sub_eyes * sub_eyes);
}

double Photodetector::required_signal_power(double boundary_snr,
                                            double op_crosstalk_w,
                                            std::size_t levels) const {
  if (levels < 2)
    throw std::invalid_argument(
        "Photodetector::required_signal_power: levels < 2");
  const double sub_eyes = static_cast<double>(levels - 1);
  return required_signal_power(boundary_snr * sub_eyes * sub_eyes,
                               op_crosstalk_w);
}

double Photodetector::photocurrent(double op_w) const noexcept {
  return params_.responsivity_a_per_w * op_w;
}

double Photodetector::coupling_transmission() const noexcept {
  return math::loss_db_to_transmission(params_.coupling_loss_db);
}

}  // namespace photecc::photonics
