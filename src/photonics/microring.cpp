#include "photecc/photonics/microring.hpp"

#include <cmath>
#include <stdexcept>

#include "photecc/math/modulation.hpp"
#include "photecc/math/units.hpp"

namespace photecc::photonics {

MicroRing::MicroRing(const MicroRingParams& params) : params_(params) {
  if (params.quality_factor <= 0.0)
    throw std::invalid_argument("MicroRing: non-positive Q");
  if (params.drop_max <= 0.0 || params.drop_max > 1.0)
    throw std::invalid_argument("MicroRing: drop_max outside (0, 1]");
  if (params.base_transmission <= 0.0 || params.base_transmission > 1.0)
    throw std::invalid_argument(
        "MicroRing: base_transmission outside (0, 1]");
  if (params.extinction_ratio_db <= 0.0)
    throw std::invalid_argument("MicroRing: ER must be positive");
  if (params.modulation_shift_m <= 0.0)
    throw std::invalid_argument(
        "MicroRing: modulation shift must be positive");
  hwhm_ = params.resonance_wavelength_m / (2.0 * params.quality_factor);

  // Solve t_min from the requested ER at the modulation shift:
  //   through_off / through_on = ER
  //   (t_min + x^2)/(1 + x^2) / t_min = ER, with x = shift / hwhm
  // => t_min = x^2 / (ER (1 + x^2) - 1).
  const double er = math::from_db(params.extinction_ratio_db);
  const double x = params.modulation_shift_m / hwhm_;
  const double denom = er * (1.0 + x * x) - 1.0;
  if (denom <= 0.0)
    throw std::invalid_argument(
        "MicroRing: modulation shift too small for the requested ER");
  t_min_ = x * x / denom;
  if (t_min_ >= 1.0)
    throw std::invalid_argument(
        "MicroRing: inconsistent ER/shift combination (t_min >= 1)");
}

double MicroRing::through(double lambda, double resonance) const noexcept {
  const double u = (lambda - resonance) / hwhm_;
  return params_.base_transmission * (t_min_ + u * u) / (1.0 + u * u);
}

double MicroRing::drop(double lambda, double resonance) const noexcept {
  const double u = (lambda - resonance) / hwhm_;
  return params_.drop_max / (1.0 + u * u);
}

double MicroRing::through_on() const noexcept {
  // ON: resonance aligned with the signal.
  return params_.base_transmission * t_min_;
}

double MicroRing::through_off() const noexcept {
  const double x = params_.modulation_shift_m / hwhm_;
  return params_.base_transmission * (t_min_ + x * x) / (1.0 + x * x);
}

double MicroRing::extinction_ratio() const noexcept {
  return through_off() / through_on();
}

double MicroRing::drop_aligned() const noexcept { return params_.drop_max; }

double MicroRing::drop_detuned(double delta) const noexcept {
  const double u = delta / hwhm_;
  return params_.drop_max / (1.0 + u * u);
}

double multilevel_modulation_power_w(double ook_power_w,
                                     std::size_t levels) {
  if (ook_power_w < 0.0)
    throw std::invalid_argument(
        "multilevel_modulation_power_w: negative power");
  return ook_power_w *
         static_cast<double>(math::pam_bits_per_symbol(levels));
}

}  // namespace photecc::photonics
