#include "photecc/photonics/wdm.hpp"

#include <cmath>
#include <stdexcept>

#include "photecc/math/units.hpp"

namespace photecc::photonics {

double WdmGrid::wavelength(std::size_t index) const {
  if (index >= channel_count)
    throw std::out_of_range("WdmGrid: channel index out of range");
  return start_wavelength_m +
         channel_spacing_m * static_cast<double>(index);
}

std::vector<double> WdmGrid::wavelengths() const {
  std::vector<double> out;
  out.reserve(channel_count);
  for (std::size_t i = 0; i < channel_count; ++i)
    out.push_back(wavelength(i));
  return out;
}

double WdmGrid::detuning(std::size_t a, std::size_t b) const {
  return std::abs(wavelength(a) - wavelength(b));
}

double Multiplexer::transmission() const noexcept {
  return math::loss_db_to_transmission(insertion_loss_db);
}

}  // namespace photecc::photonics
