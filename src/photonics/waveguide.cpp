#include "photecc/photonics/waveguide.hpp"

#include <stdexcept>

#include "photecc/math/units.hpp"

namespace photecc::photonics {

Waveguide::Waveguide(double loss_db_per_cm, double length_m)
    : loss_db_per_cm_(loss_db_per_cm), length_m_(length_m) {
  if (loss_db_per_cm < 0.0)
    throw std::invalid_argument("Waveguide: negative loss");
  if (length_m < 0.0)
    throw std::invalid_argument("Waveguide: negative length");
}

double Waveguide::total_loss_db() const noexcept {
  return loss_db_per_cm_ * length_m_ * 100.0;
}

double Waveguide::transmission() const noexcept {
  return math::loss_db_to_transmission(total_loss_db());
}

double Waveguide::transmission_over(double distance_m) const {
  if (distance_m < 0.0 || distance_m > length_m_ + 1e-12)
    throw std::out_of_range("Waveguide: distance outside [0, length]");
  return math::loss_db_to_transmission(loss_db_per_cm_ * distance_m * 100.0);
}

}  // namespace photecc::photonics
