// Wavelength-division multiplexing grid for the MWSR channel: NW
// equally spaced carriers combined by an MMI multiplexer (paper Section
// IV-B, [12]).
#ifndef PHOTECC_PHOTONICS_WDM_HPP
#define PHOTECC_PHOTONICS_WDM_HPP

#include <cstddef>
#include <vector>

namespace photecc::photonics {

/// Equally spaced WDM carrier grid.
struct WdmGrid {
  double start_wavelength_m = 1520.25e-9;  ///< lambda_0
  double channel_spacing_m = 0.30e-9;      ///< grid pitch
  std::size_t channel_count = 16;          ///< NW

  /// Carrier wavelength of channel `index` (0-based).
  [[nodiscard]] double wavelength(std::size_t index) const;

  /// All carrier wavelengths, ascending.
  [[nodiscard]] std::vector<double> wavelengths() const;

  /// Absolute detuning between two channels [m].
  [[nodiscard]] double detuning(std::size_t a, std::size_t b) const;
};

/// Multiplexer (MMI coupler) combining the NW laser outputs onto the
/// channel waveguide.
struct Multiplexer {
  double insertion_loss_db = 1.5;

  [[nodiscard]] double transmission() const noexcept;
};

}  // namespace photecc::photonics

#endif  // PHOTECC_PHOTONICS_WDM_HPP
