// Lorentzian micro-ring resonator (MR) model.
//
// The paper's Fig. 3 plots the ON/OFF transmission of the modulator MR:
// in the ON state the resonance is aligned with the optical signal and
// most power is absorbed; in the OFF state a forward-bias blue shift
// detunes the resonance and the signal passes with low loss.  The
// extinction ratio ER is the ON/OFF transmission ratio at the signal
// wavelength (6.9 dB with the device of [Rakowski et al., OFC'13]).
//
// We model the through and drop ports with the standard Lorentzian
// line shape parameterised by the loaded quality factor Q:
//
//   drop(delta)    = drop_max / (1 + (delta/hwhm)^2)
//   through(delta) = base * (t_min + (delta/hwhm)^2) / (1 + (delta/hwhm)^2)
//
// where delta is the detuning from resonance, hwhm = lambda/(2Q), and
// t_min is chosen so that the ON/OFF ratio at the signal wavelength
// equals the requested ER given the modulation shift.
#ifndef PHOTECC_PHOTONICS_MICRORING_HPP
#define PHOTECC_PHOTONICS_MICRORING_HPP

#include <cstddef>

namespace photecc::photonics {

/// Geometry/spectral parameters of one micro-ring.
struct MicroRingParams {
  double resonance_wavelength_m = 1520.25e-9;  ///< lambda_MR at rest
  double quality_factor = 65000.0;             ///< loaded Q
  /// Electro-optic resonance shift between OFF and ON states [m].
  /// OFF state = resonance moved away from the signal by this amount.
  double modulation_shift_m = 2.0 * 1520.25e-9 / 65000.0;  // 2 x FWHM
  /// Target ON/OFF extinction ratio at the signal wavelength [dB]
  /// (paper: 6.9 dB from [15]).
  double extinction_ratio_db = 6.9;
  /// Peak drop-port power transfer at resonance (0..1].
  double drop_max = 0.95;
  /// Broadband through-port baseline transmission (scattering loss).
  double base_transmission = 0.9995;
  /// Electrical modulation power P_MR per wavelength [W] (paper: 1.36 mW).
  double modulation_power_w = 1.36e-3;
};

/// Modulator / filter micro-ring with ON (aligned) and OFF (detuned)
/// states.  All transmissions are linear power ratios.
class MicroRing {
 public:
  explicit MicroRing(const MicroRingParams& params);

  /// Full width at half maximum of the resonance [m].
  [[nodiscard]] double fwhm() const noexcept { return 2.0 * hwhm_; }
  [[nodiscard]] double hwhm() const noexcept { return hwhm_; }

  /// Through-port transmission at absolute wavelength `lambda` with the
  /// resonance at `resonance`.
  [[nodiscard]] double through(double lambda, double resonance) const noexcept;

  /// Drop-port transmission at absolute wavelength `lambda`.
  [[nodiscard]] double drop(double lambda, double resonance) const noexcept;

  /// Through transmission for the signal in the ON state (resonance
  /// aligned with the signal): the '0' level of OOK.
  [[nodiscard]] double through_on() const noexcept;

  /// Through transmission for the signal in the OFF state (resonance
  /// detuned by the modulation shift): the '1' level of OOK.
  [[nodiscard]] double through_off() const noexcept;

  /// Achieved extinction ratio through_off/through_on (linear).
  [[nodiscard]] double extinction_ratio() const noexcept;

  /// Drop transmission when used as the reader filter for its own
  /// channel (resonance aligned).
  [[nodiscard]] double drop_aligned() const noexcept;

  /// Drop leakage for a signal detuned by `delta` from the filter
  /// resonance (inter-channel crosstalk path).
  [[nodiscard]] double drop_detuned(double delta) const noexcept;

  /// Residual minimum through transmission t_min solved from ER.
  [[nodiscard]] double t_min() const noexcept { return t_min_; }

  [[nodiscard]] const MicroRingParams& params() const noexcept {
    return params_;
  }

 private:
  MicroRingParams params_;
  double hwhm_;
  double t_min_;
};

/// Electrical modulation power of a ring transmitter driving an M-level
/// (PAM) eye, scaled from its binary (OOK) driver power.  Models the
/// segmented/optical-DAC MRM transmitters of Karempudi et al.
/// ("Photonic Networks-on-Chip Employing Multilevel Signaling"): one
/// binary-driven ring segment per bit of the symbol, so the driver
/// power scales with log2(M) while the symbol rate stays at Fmod.
/// `levels` must be a power of two >= 2; levels == 2 returns
/// `ook_power_w` unchanged.
[[nodiscard]] double multilevel_modulation_power_w(double ook_power_w,
                                                   std::size_t levels);

}  // namespace photecc::photonics

#endif  // PHOTECC_PHOTONICS_MICRORING_HPP
