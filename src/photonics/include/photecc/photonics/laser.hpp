// On-chip laser wall-plug models (paper Section IV-E / Fig. 4).
//
// The paper assumes CMOS-compatible PCM-VCSEL sources [16] with a
// temperature-dependent lasing efficiency, evaluated following the
// methodology of Li et al. [8] at 25 % chip activity: the electrical
// power Plaser grows linearly with the requested optical output OPlaser
// up to ~500 uW (efficiency ~5 %), then exponentially as self-heating
// degrades the efficiency, with a hard ceiling of 700 uW on the
// deliverable optical power.
//
// Two interchangeable models are provided:
//  * CalibratedVcselModel — piecewise linear/exponential curve
//    calibrated to Fig. 4 (the default everywhere).
//  * SelfHeatingVcselModel — first-principles fixed point of
//    P = OP / eta(T), T = T_amb + dT_activity + Rth * P, eta linear in
//    T.  The deliverable-power ceiling emerges from the fold of the
//    fixed point instead of being imposed.  Used by the laser-model
//    ablation bench.
#ifndef PHOTECC_PHOTONICS_LASER_HPP
#define PHOTECC_PHOTONICS_LASER_HPP

#include <memory>
#include <optional>
#include <string>

namespace photecc::photonics {

/// Interface: electrical (wall-plug) power required to emit a given
/// optical output power, at a given electrical-layer activity factor.
class LaserPowerModel {
 public:
  virtual ~LaserPowerModel() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Electrical power [W] needed for optical output `op_laser_w` [W] at
  /// `activity` in [0, 1].  Returns std::nullopt when the requested
  /// output exceeds the deliverable maximum.
  [[nodiscard]] virtual std::optional<double> electrical_power(
      double op_laser_w, double activity) const = 0;

  /// Maximum deliverable optical output power [W] at `activity`.
  [[nodiscard]] virtual double max_optical_power(double activity) const = 0;

  /// Wall-plug efficiency OP/P at the given operating point, when
  /// feasible.
  [[nodiscard]] std::optional<double> efficiency(double op_laser_w,
                                                 double activity) const;
};

/// Parameters of the Fig. 4-calibrated piecewise model.
struct CalibratedVcselParams {
  double base_efficiency = 0.052;     ///< eta in the linear region
  double knee_optical_w = 500e-6;     ///< end of the linear region
  double thermal_scale_w = 387e-6;    ///< exponential growth constant
  double max_optical_w = 700e-6;      ///< deliverable ceiling (Fig. 4/5)
  double reference_activity = 0.25;   ///< activity the curve is calibrated at
  /// Relative efficiency degradation per unit activity above the
  /// reference (electrical layer heats the optical layer).
  double activity_derating = 0.6;
};

/// Piecewise linear/exponential wall-plug curve calibrated to Fig. 4.
class CalibratedVcselModel final : public LaserPowerModel {
 public:
  explicit CalibratedVcselModel(const CalibratedVcselParams& params = {});

  [[nodiscard]] std::string name() const override {
    return "calibrated-vcsel";
  }
  [[nodiscard]] std::optional<double> electrical_power(
      double op_laser_w, double activity) const override;
  [[nodiscard]] double max_optical_power(double activity) const override;

  [[nodiscard]] const CalibratedVcselParams& params() const noexcept {
    return params_;
  }

 private:
  /// Efficiency in the linear region after activity derating.
  [[nodiscard]] double derated_efficiency(double activity) const;

  CalibratedVcselParams params_;
};

/// Parameters of the physical self-heating model.
struct SelfHeatingVcselParams {
  double cold_efficiency = 0.055;      ///< eta at the reference temperature
  double ambient_temperature_c = 45.0; ///< optical-layer ambient
  double reference_temperature_c = 45.0;
  /// Efficiency slope: eta(T) = cold * (1 - slope * (T - Tref)).
  double efficiency_slope_per_c = 0.012;
  double thermal_resistance_c_per_w = 1400.0;  ///< self-heating R_th
  /// Temperature rise contributed by the electrical layer at activity 1.
  double activity_heating_c = 28.0;
};

/// Fixed-point self-heating model; the optical ceiling emerges from the
/// fold of  P = OP / eta(T(P)).
class SelfHeatingVcselModel final : public LaserPowerModel {
 public:
  explicit SelfHeatingVcselModel(const SelfHeatingVcselParams& params = {});

  [[nodiscard]] std::string name() const override {
    return "self-heating-vcsel";
  }
  [[nodiscard]] std::optional<double> electrical_power(
      double op_laser_w, double activity) const override;
  [[nodiscard]] double max_optical_power(double activity) const override;

  /// Steady-state junction temperature at the operating point [C].
  [[nodiscard]] std::optional<double> junction_temperature(
      double op_laser_w, double activity) const;

  [[nodiscard]] const SelfHeatingVcselParams& params() const noexcept {
    return params_;
  }

 private:
  SelfHeatingVcselParams params_;
};

/// The default model used across the library (Fig. 4 calibration).
std::shared_ptr<const LaserPowerModel> default_laser_model();

}  // namespace photecc::photonics

#endif  // PHOTECC_PHOTONICS_LASER_HPP
