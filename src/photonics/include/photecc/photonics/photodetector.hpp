// Photodetector model implementing the paper's Eq. 4:
//
//   SNR = R * (OPsignal - OPcrosstalk) / i_n
//
// with responsivity R = 1 A/W and dark current i_n = 4 uA.
#ifndef PHOTECC_PHOTONICS_PHOTODETECTOR_HPP
#define PHOTECC_PHOTONICS_PHOTODETECTOR_HPP

namespace photecc::photonics {

/// Receiver photodetector parameters (paper defaults).
struct PhotodetectorParams {
  double responsivity_a_per_w = 1.0;  ///< R [A/W]
  double dark_current_a = 4e-6;       ///< i_n [A]
  /// Optical coupling loss from the drop waveguide into the detector
  /// [dB]; part of the link budget rather than Eq. 4 itself.
  double coupling_loss_db = 0.3;
};

/// Photodetector converting received optical power to the paper's SNR.
class Photodetector {
 public:
  explicit Photodetector(const PhotodetectorParams& params = {});

  /// Eq. 4: SNR for a received signal power and worst-case crosstalk
  /// power (both in watts at the detector).  Returns 0 when crosstalk
  /// exceeds signal.
  [[nodiscard]] double snr(double op_signal_w, double op_crosstalk_w) const;

  /// Inverse of Eq. 4: signal power required at the detector for a
  /// target SNR given the crosstalk power.
  [[nodiscard]] double required_signal_power(double snr,
                                             double op_crosstalk_w) const;

  /// Photocurrent for an incident optical power [A].
  [[nodiscard]] double photocurrent(double op_w) const noexcept;

  /// Power transmission of the detector coupling (from coupling_loss_db).
  [[nodiscard]] double coupling_transmission() const noexcept;

  [[nodiscard]] const PhotodetectorParams& params() const noexcept {
    return params_;
  }

 private:
  PhotodetectorParams params_;
};

}  // namespace photecc::photonics

#endif  // PHOTECC_PHOTONICS_PHOTODETECTOR_HPP
