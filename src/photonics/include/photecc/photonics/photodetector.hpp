// Photodetector model implementing the paper's Eq. 4:
//
//   SNR = R * (OPsignal - OPcrosstalk) / i_n
//
// with responsivity R = 1 A/W and dark current i_n = 4 uA.
#ifndef PHOTECC_PHOTONICS_PHOTODETECTOR_HPP
#define PHOTECC_PHOTONICS_PHOTODETECTOR_HPP

#include <cstddef>

namespace photecc::photonics {

/// Receiver photodetector parameters (paper defaults).
struct PhotodetectorParams {
  double responsivity_a_per_w = 1.0;  ///< R [A/W]
  double dark_current_a = 4e-6;       ///< i_n [A]
  /// Optical coupling loss from the drop waveguide into the detector
  /// [dB]; part of the link budget rather than Eq. 4 itself.
  double coupling_loss_db = 0.3;
};

/// Photodetector converting received optical power to the paper's SNR.
class Photodetector {
 public:
  explicit Photodetector(const PhotodetectorParams& params = {});

  /// Eq. 4: SNR for a received signal power and worst-case crosstalk
  /// power (both in watts at the detector).  Returns 0 when crosstalk
  /// exceeds signal.
  [[nodiscard]] double snr(double op_signal_w, double op_crosstalk_w) const;

  /// Inverse of Eq. 4: signal power required at the detector for a
  /// target SNR given the crosstalk power.
  [[nodiscard]] double required_signal_power(double snr,
                                             double op_crosstalk_w) const;

  /// Eq. 4 SNR seen by one decision boundary of an M-level PAM eye:
  /// the full eye amplitude splits into (levels-1) equal sub-eyes, so
  /// the per-boundary SNR is the full-eye SNR divided by (levels-1)^2
  /// (the paper's SNR enters the BER through a square root, i.e. it is
  /// quadratic in the eye amplitude).  levels == 2 returns snr().
  [[nodiscard]] double pam_boundary_snr(double op_signal_w,
                                        double op_crosstalk_w,
                                        std::size_t levels) const;

  /// Inverse of pam_boundary_snr: full-eye signal power required at
  /// the detector so every PAM sub-eye boundary reaches
  /// `boundary_snr` — (levels-1)^2 times the OOK requirement before
  /// crosstalk.  `boundary_snr` is the PER-BOUNDARY (OOK-equivalent)
  /// requirement, e.g. math::snr_from_raw_ber(raw_ber); do NOT pass a
  /// full-eye SNR from math::snr_from_ber(modulation, ...) — that
  /// value already contains the (levels-1)^2 penalty (the link solver
  /// path uses it with the 2-argument overload) and would double-count
  /// it here.
  [[nodiscard]] double required_signal_power(double boundary_snr,
                                             double op_crosstalk_w,
                                             std::size_t levels) const;

  /// Photocurrent for an incident optical power [A].
  [[nodiscard]] double photocurrent(double op_w) const noexcept;

  /// Power transmission of the detector coupling (from coupling_loss_db).
  [[nodiscard]] double coupling_transmission() const noexcept;

  [[nodiscard]] const PhotodetectorParams& params() const noexcept {
    return params_;
  }

 private:
  PhotodetectorParams params_;
};

}  // namespace photecc::photonics

#endif  // PHOTECC_PHOTONICS_PHOTODETECTOR_HPP
