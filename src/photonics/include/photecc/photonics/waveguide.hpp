// Silicon waveguide propagation-loss model (paper: 0.274 dB/cm, [17]).
#ifndef PHOTECC_PHOTONICS_WAVEGUIDE_HPP
#define PHOTECC_PHOTONICS_WAVEGUIDE_HPP

namespace photecc::photonics {

/// Straight waveguide with distributed propagation loss.
class Waveguide {
 public:
  /// `loss_db_per_cm` >= 0; `length_m` >= 0.
  Waveguide(double loss_db_per_cm, double length_m);

  [[nodiscard]] double length_m() const noexcept { return length_m_; }
  [[nodiscard]] double loss_db_per_cm() const noexcept {
    return loss_db_per_cm_;
  }

  /// Total propagation loss over the full length [dB].
  [[nodiscard]] double total_loss_db() const noexcept;

  /// Power transmission over the full length (0..1].
  [[nodiscard]] double transmission() const noexcept;

  /// Power transmission over a partial distance [m].
  [[nodiscard]] double transmission_over(double distance_m) const;

 private:
  double loss_db_per_cm_;
  double length_m_;
};

}  // namespace photecc::photonics

#endif  // PHOTECC_PHOTONICS_WAVEGUIDE_HPP
