#include "photecc/photonics/laser.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace photecc::photonics {
namespace {

void check_activity(double activity) {
  if (activity < 0.0 || activity > 1.0)
    throw std::invalid_argument("laser model: activity outside [0, 1]");
}

}  // namespace

std::optional<double> LaserPowerModel::efficiency(double op_laser_w,
                                                  double activity) const {
  const auto p = electrical_power(op_laser_w, activity);
  if (!p || *p <= 0.0) return std::nullopt;
  return op_laser_w / *p;
}

// ---------------------------------------------------------------------
// CalibratedVcselModel
// ---------------------------------------------------------------------

CalibratedVcselModel::CalibratedVcselModel(
    const CalibratedVcselParams& params)
    : params_(params) {
  if (params.base_efficiency <= 0.0 || params.base_efficiency > 1.0)
    throw std::invalid_argument("CalibratedVcselModel: bad efficiency");
  if (params.knee_optical_w <= 0.0 ||
      params.max_optical_w < params.knee_optical_w)
    throw std::invalid_argument("CalibratedVcselModel: bad knee/max");
  if (params.thermal_scale_w <= 0.0)
    throw std::invalid_argument("CalibratedVcselModel: bad thermal scale");
}

double CalibratedVcselModel::derated_efficiency(double activity) const {
  check_activity(activity);
  const double derate =
      1.0 - params_.activity_derating * (activity - params_.reference_activity);
  return params_.base_efficiency * std::max(0.05, derate);
}

std::optional<double> CalibratedVcselModel::electrical_power(
    double op_laser_w, double activity) const {
  if (op_laser_w < 0.0)
    throw std::invalid_argument("electrical_power: negative optical power");
  if (op_laser_w > max_optical_power(activity)) return std::nullopt;
  const double eta = derated_efficiency(activity);
  if (op_laser_w <= params_.knee_optical_w) return op_laser_w / eta;
  // Exponential thermal-droop region above the knee (Fig. 4 shape).
  const double knee_power = params_.knee_optical_w / eta;
  return knee_power * std::exp((op_laser_w - params_.knee_optical_w) /
                               params_.thermal_scale_w);
}

double CalibratedVcselModel::max_optical_power(double activity) const {
  check_activity(activity);
  // Hotter chip -> lower deliverable maximum; linear derating mirrors
  // the efficiency derating.
  const double derate =
      1.0 - params_.activity_derating * (activity - params_.reference_activity);
  return params_.max_optical_w * std::clamp(derate, 0.05, 2.0);
}

// ---------------------------------------------------------------------
// SelfHeatingVcselModel
// ---------------------------------------------------------------------

SelfHeatingVcselModel::SelfHeatingVcselModel(
    const SelfHeatingVcselParams& params)
    : params_(params) {
  if (params.cold_efficiency <= 0.0 || params.cold_efficiency > 1.0)
    throw std::invalid_argument("SelfHeatingVcselModel: bad efficiency");
  if (params.thermal_resistance_c_per_w < 0.0)
    throw std::invalid_argument("SelfHeatingVcselModel: bad Rth");
  if (params.efficiency_slope_per_c < 0.0)
    throw std::invalid_argument("SelfHeatingVcselModel: bad slope");
}

std::optional<double> SelfHeatingVcselModel::electrical_power(
    double op_laser_w, double activity) const {
  if (op_laser_w < 0.0)
    throw std::invalid_argument("electrical_power: negative optical power");
  check_activity(activity);
  if (op_laser_w == 0.0) return 0.0;
  // eta(T) = eta0 (1 - s (T - Tref)),  T = Tamb + a*act + Rth P
  // P eta(T(P)) = OP  =>  quadratic  -eta0 s Rth P^2 + eta0 g P - OP = 0
  // with g = 1 - s (Tamb + a*act - Tref).
  const double eta0 = params_.cold_efficiency;
  const double s = params_.efficiency_slope_per_c;
  const double rth = params_.thermal_resistance_c_per_w;
  const double g =
      1.0 - s * (params_.ambient_temperature_c +
                 params_.activity_heating_c * activity -
                 params_.reference_temperature_c);
  if (g <= 0.0) return std::nullopt;  // too hot to lase at all
  const double a = eta0 * s * rth;
  const double b = eta0 * g;
  if (a == 0.0) return op_laser_w / b;  // no self-heating: linear model
  const double disc = b * b - 4.0 * a * op_laser_w;
  if (disc < 0.0) return std::nullopt;  // beyond the fold: undeliverable
  // The smaller root is the stable operating point.
  return (b - std::sqrt(disc)) / (2.0 * a);
}

double SelfHeatingVcselModel::max_optical_power(double activity) const {
  check_activity(activity);
  const double eta0 = params_.cold_efficiency;
  const double s = params_.efficiency_slope_per_c;
  const double rth = params_.thermal_resistance_c_per_w;
  const double g =
      1.0 - s * (params_.ambient_temperature_c +
                 params_.activity_heating_c * activity -
                 params_.reference_temperature_c);
  if (g <= 0.0) return 0.0;
  if (s == 0.0 || rth == 0.0)
    return 1.0;  // no fold: effectively unbounded (1 W sentinel)
  // Fold of the quadratic: OPmax = (eta0 g)^2 / (4 eta0 s Rth).
  return (eta0 * g) * (eta0 * g) / (4.0 * eta0 * s * rth);
}

std::optional<double> SelfHeatingVcselModel::junction_temperature(
    double op_laser_w, double activity) const {
  const auto p = electrical_power(op_laser_w, activity);
  if (!p) return std::nullopt;
  return params_.ambient_temperature_c +
         params_.activity_heating_c * activity +
         params_.thermal_resistance_c_per_w * *p;
}

std::shared_ptr<const LaserPowerModel> default_laser_model() {
  static const auto model = std::make_shared<CalibratedVcselModel>();
  return model;
}

}  // namespace photecc::photonics
