#include "photecc/spec/cli.hpp"

#include <charconv>
#include <cmath>

#include "photecc/spec/registries.hpp"

namespace photecc::spec {

std::size_t parse_size(const std::string& field, const std::string& token) {
  std::size_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (token.empty() || ec != std::errc{} ||
      ptr != token.data() + token.size())
    throw SpecError(field,
                    "expected a non-negative integer, got '" + token + "'");
  return value;
}

double parse_ber(const std::string& field, const std::string& token) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (token.empty() || ec != std::errc{} ||
      ptr != token.data() + token.size())
    throw SpecError(field, "expected a number, got '" + token + "'");
  if (!std::isfinite(value) || value <= 0.0 || value >= 0.5)
    throw SpecError(field, "value '" + token +
                               "' outside the BER range (0, 0.5)");
  return value;
}

std::vector<std::string> split_list(const std::string& field,
                                    const std::string& token) {
  std::vector<std::string> items;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = token.find(',', start);
    const std::size_t end = comma == std::string::npos ? token.size() : comma;
    if (end == start)
      throw SpecError(field, "empty item in list '" + token + "'");
    items.push_back(token.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return items;
}

std::vector<std::string> parse_modulation_names(const std::string& field,
                                                const std::string& token) {
  std::vector<std::string> names = split_list(field, token);
  for (const std::string& name : names)
    (void)modulation_registry().make(name, field);  // validates the name
  return names;
}

std::string render_name_list(const std::string& title,
                             const std::vector<std::string>& names) {
  std::string out =
      title + " (" + std::to_string(names.size()) + "):\n";
  for (const std::string& name : names) out += "  " + name + "\n";
  return out;
}

}  // namespace photecc::spec
