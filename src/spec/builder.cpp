#include "photecc/spec/builder.hpp"

#include <utility>

#include "photecc/cooling/cooling_code.hpp"

namespace photecc::spec {

SpecBuilder& SpecBuilder::name(std::string value) {
  spec_.name = std::move(value);
  return *this;
}

SpecBuilder& SpecBuilder::evaluator(std::string value) {
  spec_.evaluator = std::move(value);
  return *this;
}

SpecBuilder& SpecBuilder::threads(std::size_t value) {
  spec_.threads = value;
  return *this;
}

SpecBuilder& SpecBuilder::link(std::string registry_key) {
  spec_.base_link = std::move(registry_key);
  return *this;
}

SpecBuilder& SpecBuilder::seed(std::uint64_t value) {
  spec_.seed = value;
  return *this;
}

SpecBuilder& SpecBuilder::noc_horizon(double horizon_s) {
  spec_.noc_horizon_s = horizon_s;
  return *this;
}

SpecBuilder& SpecBuilder::codes(std::vector<std::string> names) {
  spec_.codes = std::move(names);
  return *this;
}

SpecBuilder& SpecBuilder::cooling(const std::string& inner,
                                  std::size_t weight) {
  spec_.codes.push_back(cooling::cooling_name(inner, weight));
  return *this;
}

SpecBuilder& SpecBuilder::cooling(std::size_t length, std::size_t weight) {
  spec_.codes.push_back(cooling::cooling_name(length, weight));
  return *this;
}

SpecBuilder& SpecBuilder::ber_targets(std::vector<double> bers) {
  spec_.ber_targets = std::move(bers);
  return *this;
}

SpecBuilder& SpecBuilder::links(std::vector<std::string> registry_keys) {
  spec_.links = std::move(registry_keys);
  return *this;
}

SpecBuilder& SpecBuilder::oni_counts(std::vector<std::size_t> counts) {
  spec_.oni_counts = std::move(counts);
  return *this;
}

SpecBuilder& SpecBuilder::traffic(std::vector<TrafficEntry> entries) {
  spec_.traffic = std::move(entries);
  return *this;
}

SpecBuilder& SpecBuilder::uniform_traffic(double rate_msgs_per_s,
                                          std::uint64_t payload_bits) {
  TrafficEntry entry;
  entry.kind = "uniform";
  entry.rate_msgs_per_s = rate_msgs_per_s;
  entry.payload_bits = payload_bits;
  spec_.traffic.push_back(entry);
  return *this;
}

SpecBuilder& SpecBuilder::hotspot_traffic(double rate_msgs_per_s,
                                          std::size_t hotspot,
                                          double hotspot_fraction,
                                          std::uint64_t payload_bits) {
  TrafficEntry entry;
  entry.kind = "hotspot";
  entry.rate_msgs_per_s = rate_msgs_per_s;
  entry.payload_bits = payload_bits;
  entry.hotspot = hotspot;
  entry.hotspot_fraction = hotspot_fraction;
  spec_.traffic.push_back(entry);
  return *this;
}

SpecBuilder& SpecBuilder::trace_traffic(std::string path) {
  TrafficEntry entry;
  entry.kind = "trace";
  entry.trace_path = std::move(path);
  spec_.traffic.push_back(std::move(entry));
  return *this;
}

SpecBuilder& SpecBuilder::network(NetworkEntry entry) {
  spec_.network = std::move(entry);
  return *this;
}

SpecBuilder& SpecBuilder::laser_gating(std::vector<bool> values) {
  spec_.laser_gating = std::move(values);
  return *this;
}

SpecBuilder& SpecBuilder::policies(std::vector<std::string> names) {
  spec_.policies = std::move(names);
  return *this;
}

SpecBuilder& SpecBuilder::modulations(std::vector<std::string> names) {
  spec_.modulations = std::move(names);
  return *this;
}

SpecBuilder& SpecBuilder::modulation(std::string format) {
  spec_.modulations = {std::move(format)};
  return *this;
}

SpecBuilder& SpecBuilder::environments(
    std::vector<EnvironmentEntry> entries) {
  spec_.environments = std::move(entries);
  return *this;
}

SpecBuilder& SpecBuilder::environment(EnvironmentEntry entry) {
  spec_.environments.push_back(std::move(entry));
  return *this;
}

SpecBuilder& SpecBuilder::objective(std::string metric, bool minimize) {
  spec_.objectives.push_back({std::move(metric), minimize});
  return *this;
}

SpecBuilder& SpecBuilder::objectives(std::vector<ObjectiveEntry> entries) {
  spec_.objectives = std::move(entries);
  return *this;
}

ExperimentSpec SpecBuilder::build() const {
  validate(spec_);
  return spec_;
}

}  // namespace photecc::spec
