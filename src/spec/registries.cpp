#include "photecc/spec/registries.hpp"

#include "photecc/cooling/cooling_code.hpp"
#include "photecc/ecc/registry.hpp"
#include "photecc/explore/evaluators.hpp"
#include "photecc/explore/scenario.hpp"

namespace photecc::spec {

namespace {

link::MwsrParams length_variant(double waveguide_length_m) {
  link::MwsrParams params;
  params.waveguide_length_m = waveguide_length_m;
  return params;
}

}  // namespace

Registry<link::MwsrParams>& link_registry() {
  static Registry<link::MwsrParams>* registry = [] {
    auto* r = new Registry<link::MwsrParams>("link variant");
    const auto paper = [] { return link::MwsrParams{}; };
    r->add("paper", paper);
    r->add("paper-6cm", paper);
    r->add("paper-6cm-12oni", paper);
    r->add("short-2cm-4oni", [] {
      link::MwsrParams params;
      params.waveguide_length_m = 0.02;
      params.oni_count = 4;
      return params;
    });
    // Length-only variants; the keys match the labels the historical
    // bench sweeps printed ("2 cm"), keeping their exports byte-stable.
    r->add("2 cm", [] { return length_variant(0.02); });
    r->add("4 cm", [] { return length_variant(0.04); });
    r->add("6 cm", [] { return length_variant(0.06); });
    r->add("10 cm", [] { return length_variant(0.10); });
    r->add("14 cm", [] { return length_variant(0.14); });
    return r;
  }();
  return *registry;
}

Registry<explore::SweepRunner::Evaluator>& evaluator_registry() {
  static Registry<explore::SweepRunner::Evaluator>* registry = [] {
    auto* r = new Registry<explore::SweepRunner::Evaluator>("evaluator");
    r->add("link", [] {
      return explore::SweepRunner::Evaluator{explore::evaluate_link_cell};
    });
    r->add("noc", [] {
      return explore::SweepRunner::Evaluator{explore::evaluate_noc_cell};
    });
    r->add("network", [] {
      return explore::SweepRunner::Evaluator{explore::evaluate_network_cell};
    });
    return r;
  }();
  return *registry;
}

Registry<TrafficLowering>& traffic_registry() {
  static Registry<TrafficLowering>* registry = [] {
    auto* r = new Registry<TrafficLowering>("traffic kind");
    r->add("uniform", [] {
      return TrafficLowering{[](const TrafficEntry& entry) {
        return explore::uniform_traffic(entry.rate_msgs_per_s,
                                        entry.payload_bits);
      }};
    });
    r->add("hotspot", [] {
      return TrafficLowering{[](const TrafficEntry& entry) {
        return explore::hotspot_traffic(entry.rate_msgs_per_s, entry.hotspot,
                                        entry.hotspot_fraction,
                                        entry.payload_bits);
      }};
    });
    r->add("trace", [] {
      return TrafficLowering{[](const TrafficEntry& entry) {
        return explore::trace_traffic(entry.trace_path);
      }};
    });
    return r;
  }();
  return *registry;
}

Registry<EnvironmentLowering>& environment_registry() {
  static Registry<EnvironmentLowering>* registry = [] {
    auto* r = new Registry<EnvironmentLowering>("environment kind");
    r->add("constant", [] {
      return EnvironmentLowering{[](const EnvironmentEntry& e) {
        return env::EnvironmentTimeline::constant(e.activity);
      }};
    });
    r->add("step", [] {
      return EnvironmentLowering{[](const EnvironmentEntry& e) {
        return env::EnvironmentTimeline::step(e.at_s, e.from_activity,
                                              e.to_activity);
      }};
    });
    r->add("ramp", [] {
      return EnvironmentLowering{[](const EnvironmentEntry& e) {
        return env::EnvironmentTimeline::ramp(e.start_s, e.end_s,
                                              e.from_activity,
                                              e.to_activity);
      }};
    });
    r->add("phases", [] {
      return EnvironmentLowering{[](const EnvironmentEntry& e) {
        std::vector<env::EnvironmentPhase> schedule;
        schedule.reserve(e.phases.size());
        for (const EnvironmentPhaseEntry& phase : e.phases)
          schedule.push_back(
              {phase.duration_s, phase.activity, phase.label});
        return env::EnvironmentTimeline::phases(std::move(schedule),
                                                e.cyclic);
      }};
    });
    r->add("self-heating", [] {
      return EnvironmentLowering{[](const EnvironmentEntry& e) {
        return env::EnvironmentTimeline::self_heating(
            e.baseline_activity, e.busy_gain, e.tau_s);
      }};
    });
    return r;
  }();
  return *registry;
}

Registry<core::Policy>& policy_registry() {
  static Registry<core::Policy>* registry = [] {
    auto* r = new Registry<core::Policy>("policy");
    for (const core::Policy policy : core::all_policies())
      r->add(core::to_string(policy), [policy] { return policy; });
    return r;
  }();
  return *registry;
}

Registry<math::Modulation>& modulation_registry() {
  static Registry<math::Modulation>* registry = [] {
    auto* r = new Registry<math::Modulation>("modulation");
    for (const math::Modulation modulation : math::all_modulations())
      r->add(math::to_string(modulation), [modulation] { return modulation; });
    return r;
  }();
  return *registry;
}

namespace {

ExperimentSpec fig6b_preset() {
  ExperimentSpec spec;
  spec.name = "fig6b";
  spec.codes = explore::paper_scheme_names();
  spec.ber_targets = {1e-6, 1e-8, 1e-10, 1e-12};
  spec.objectives = {{"ct", true}, {"p_channel_w", true}};
  return spec;
}

ExperimentSpec noc_preset() {
  ExperimentSpec spec;
  spec.name = "noc";
  spec.noc_horizon_s = 1e-6;
  spec.traffic = {
      {"uniform", 1e8, 4096, 0, 0.5, ""},
      {"uniform", 4e8, 4096, 0, 0.5, ""},
      {"hotspot", 2e8, 4096, 0, 0.5, ""},
  };
  spec.laser_gating = {true, false};
  spec.policies = {"min-energy", "min-time"};
  spec.oni_counts = {8, 12};
  spec.objectives = {{"mean_latency_s", true}, {"energy_per_bit_j", true}};
  return spec;
}

/// The OOK-vs-PAM4 sweep of bench_modulation_tradeoff: the full code
/// menu on the paper channel and a short-reach variant.
ExperimentSpec modulation_preset() {
  ExperimentSpec spec;
  spec.name = "modulation";
  for (const auto& code : ecc::all_known_codes())
    spec.codes.push_back(code->name());
  spec.ber_targets = {1e-6, 1e-9};
  spec.links = {"paper-6cm-12oni", "short-2cm-4oni"};
  spec.modulations = {"ook", "pam4"};
  spec.objectives = {{"ct", true}, {"p_channel_w", true}};
  return spec;
}

/// The thermal-transient sweep: the paper's scheme menu under a
/// mid-horizon activity ramp from the paper's 25 % toward saturation,
/// plus a self-heating variant — the dynamic twin of ablation AB5.
ExperimentSpec thermal_preset() {
  ExperimentSpec spec;
  spec.name = "thermal";
  spec.noc_horizon_s = 2e-6;
  spec.codes = explore::paper_scheme_names();
  spec.ber_targets = {1e-11};
  spec.traffic = {{"uniform", 4e8, 4096, 0, 0.5, ""}};
  EnvironmentEntry constant;
  EnvironmentEntry ramp;
  ramp.kind = "ramp";
  ramp.start_s = 2e-7;
  ramp.end_s = 1.2e-6;
  ramp.from_activity = 0.25;
  ramp.to_activity = 1.0;
  EnvironmentEntry self_heating;
  self_heating.kind = "self-heating";
  self_heating.baseline_activity = 0.25;
  self_heating.busy_gain = 0.75;
  self_heating.tau_s = 4e-7;
  spec.environments = {constant, ramp, self_heating};
  spec.objectives = {{"dropped_thermal", true}, {"energy_per_bit_j", true}};
  return spec;
}

/// The tiled-network sweep (schema v3): 16 tiles over 4 MWSR channels
/// where the interleaved mapping puts channels 0-1 under a thermal
/// ramp (hot cluster) and leaves 2-3 at the paper's 25 % activity —
/// per-code sweeps on top expose where uniform coding loses to the
/// per-channel assignment of bench_network_pareto.
ExperimentSpec network_preset() {
  ExperimentSpec spec;
  spec.name = "network";
  spec.noc_horizon_s = 2e-6;
  spec.ber_targets = {1e-11};
  spec.codes = explore::paper_scheme_names();
  spec.traffic = {{"uniform", 4e8, 4096, 0, 0.5, ""}};
  NetworkEntry net;
  net.tile_count = 16;
  net.channel_count = 4;
  EnvironmentEntry hot;
  hot.kind = "ramp";
  hot.start_s = 2e-7;
  hot.end_s = 1.2e-6;
  hot.from_activity = 0.25;
  hot.to_activity = 1.0;
  EnvironmentEntry cool;
  cool.activity = 0.25;
  net.channel_environments = {hot, hot, cool, cool};
  spec.network = net;
  spec.objectives = {{"dropped_thermal", true}, {"energy_per_bit_j", true}};
  return spec;
}

/// The cooling-code sweep (schema v4): the ramp / self-heating
/// environments of the thermal preset, with weight-bounded cooling
/// wraps of H(71,64) next to the bare FEC menu — the duty-bound
/// columns and dropped_thermal objective expose the thermal headroom a
/// cooling code buys at its rate cost.
ExperimentSpec cooling_preset() {
  ExperimentSpec spec;
  spec.name = "cooling";
  spec.noc_horizon_s = 2e-6;
  spec.codes = {"w/o ECC", "H(71,64)",
                cooling::cooling_name(std::size_t{64}, std::size_t{16}),
                cooling::cooling_name("H(71,64)", 16),
                cooling::cooling_name("H(71,64)", 32)};
  spec.ber_targets = {1e-11};
  spec.traffic = {{"uniform", 4e8, 4096, 0, 0.5, ""}};
  EnvironmentEntry ramp;
  ramp.kind = "ramp";
  ramp.start_s = 2e-7;
  ramp.end_s = 1.2e-6;
  ramp.from_activity = 0.25;
  ramp.to_activity = 1.0;
  EnvironmentEntry self_heating;
  self_heating.kind = "self-heating";
  self_heating.baseline_activity = 0.25;
  self_heating.busy_gain = 0.75;
  self_heating.tau_s = 4e-7;
  spec.environments = {ramp, self_heating};
  spec.objectives = {{"dropped_thermal", true}, {"energy_per_bit_j", true}};
  return spec;
}

ExperimentSpec modulation_smoke_preset() {
  ExperimentSpec spec;
  spec.name = "modulation-smoke";
  spec.codes = explore::paper_scheme_names();
  spec.ber_targets = {1e-8, 1e-10};
  spec.modulations = {"ook", "pam4"};
  spec.objectives = {{"ct", true}, {"p_channel_w", true}};
  return spec;
}

}  // namespace

Registry<ExperimentSpec>& preset_registry() {
  static Registry<ExperimentSpec>* registry = [] {
    auto* r = new Registry<ExperimentSpec>("preset");
    r->add("fig6b", fig6b_preset);
    r->add("noc", noc_preset);
    r->add("modulation", modulation_preset);
    r->add("modulation-smoke", modulation_smoke_preset);
    r->add("thermal", thermal_preset);
    r->add("network", network_preset);
    r->add("cooling", cooling_preset);
    return r;
  }();
  return *registry;
}

}  // namespace photecc::spec
