// Shared token-parsing layer for CLI flags and other stringly inputs.
// Every helper takes the field path it is parsing ("--threads",
// "axes.modulations") and reports failures as SpecError in the uniform
// "<field>: <reason> '<token>'" shape, so explore_cli and any future
// front end print identical usage errors.
#ifndef PHOTECC_SPEC_CLI_HPP
#define PHOTECC_SPEC_CLI_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "photecc/spec/error.hpp"

namespace photecc::spec {

/// Non-negative integer ("0", "12"); rejects signs, junk suffixes and
/// overflow with a SpecError instead of an uncaught std::stoul.
[[nodiscard]] std::size_t parse_size(const std::string& field,
                                     const std::string& token);

/// Positive double in (0, 0.5) — the BER-target shape.  Rejects
/// non-numeric and out-of-range input.
[[nodiscard]] double parse_ber(const std::string& field,
                               const std::string& token);

/// Splits "a,b,c" into {"a","b","c"}; empty items ("a,,b", trailing
/// comma, empty string) are errors.
[[nodiscard]] std::vector<std::string> split_list(const std::string& field,
                                                  const std::string& token);

/// Comma-separated modulation names validated against
/// modulation_registry() ("ook,pam4"); returns the canonical names.
[[nodiscard]] std::vector<std::string> parse_modulation_names(
    const std::string& field, const std::string& token);

/// Renders one registry's contents for the CLI --list-* subcommands:
/// a "<title> (<count>):" header followed by one indented name per
/// line, ending with a newline.  Shared so every front end prints
/// identical listings (and tests can pin the format once).
[[nodiscard]] std::string render_name_list(
    const std::string& title, const std::vector<std::string>& names);

}  // namespace photecc::spec

#endif  // PHOTECC_SPEC_CLI_HPP
