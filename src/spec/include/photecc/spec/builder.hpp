// Fluent C++ construction of an ExperimentSpec — the first of the three
// equivalent entry points (builder / JSON / CLI flags):
//
//   const auto spec = spec::SpecBuilder()
//                         .name("fig6b")
//                         .link("paper-6cm")
//                         .codes({"H(71,64)", "BCH(15,7,2)"})
//                         .ber_targets({1e-8, 1e-10})
//                         .modulation("pam4")
//                         .objective("ct")
//                         .objective("p_channel_w")
//                         .build();
//
// build() validates and throws SpecError with the offending field path;
// a spec that builds is a spec that runs.
#ifndef PHOTECC_SPEC_BUILDER_HPP
#define PHOTECC_SPEC_BUILDER_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "photecc/spec/spec.hpp"

namespace photecc::spec {

class SpecBuilder {
 public:
  SpecBuilder& name(std::string value);
  /// Cell evaluator: "auto" (default), "link", "noc" or any registered
  /// evaluator name.
  SpecBuilder& evaluator(std::string value);
  SpecBuilder& threads(std::size_t value);

  /// Base link variant (link_registry() key) applied when the links()
  /// axis is undeclared.
  SpecBuilder& link(std::string registry_key);
  SpecBuilder& seed(std::uint64_t value);
  SpecBuilder& noc_horizon(double horizon_s);

  /// Tiled-network section (schema v3).  Routes the grid to the
  /// network evaluator; every declared axis sweeps on top of it.
  SpecBuilder& network(NetworkEntry entry);

  // --- Axes (empty vector = leave the axis undeclared). ---
  SpecBuilder& codes(std::vector<std::string> names);
  /// Appends one concatenated cooling code "COOL(<inner>,w)" to the
  /// codes axis (schema v4): bounded-weight words through the
  /// systematic `inner` FEC.
  SpecBuilder& cooling(const std::string& inner, std::size_t weight);
  /// Appends one pure cooling code "COOL(n,w)" to the codes axis
  /// (schema v4): n-wire words of weight <= w, no error correction.
  SpecBuilder& cooling(std::size_t length, std::size_t weight);
  SpecBuilder& ber_targets(std::vector<double> bers);
  SpecBuilder& links(std::vector<std::string> registry_keys);
  SpecBuilder& oni_counts(std::vector<std::size_t> counts);
  SpecBuilder& traffic(std::vector<TrafficEntry> entries);
  /// Appends one uniform-traffic axis value.
  SpecBuilder& uniform_traffic(double rate_msgs_per_s,
                               std::uint64_t payload_bits = 4096);
  /// Appends one hotspot-traffic axis value.
  SpecBuilder& hotspot_traffic(double rate_msgs_per_s, std::size_t hotspot,
                               double hotspot_fraction,
                               std::uint64_t payload_bits = 4096);
  /// Appends one trace-traffic axis value (schema v3): replays the
  /// noc::TraceTraffic file at `path`.
  SpecBuilder& trace_traffic(std::string path);
  SpecBuilder& laser_gating(std::vector<bool> values);
  SpecBuilder& policies(std::vector<std::string> names);
  SpecBuilder& modulations(std::vector<std::string> names);
  /// Single-format shorthand: a modulation axis with one value.
  SpecBuilder& modulation(std::string format);
  /// Environment axis (schema v2): declarative timeline entries.
  SpecBuilder& environments(std::vector<EnvironmentEntry> entries);
  /// Appends one environment axis value.
  SpecBuilder& environment(EnvironmentEntry entry);

  /// Appends one Pareto objective.
  SpecBuilder& objective(std::string metric, bool minimize = true);
  SpecBuilder& objectives(std::vector<ObjectiveEntry> entries);

  /// Validates and returns the spec; throws SpecError on any bad field.
  [[nodiscard]] ExperimentSpec build() const;

  /// The spec under construction, unvalidated (for incremental CLI
  /// assembly where validation happens once at the end).
  [[nodiscard]] ExperimentSpec& draft() noexcept { return spec_; }

 private:
  ExperimentSpec spec_;
};

}  // namespace photecc::spec

#endif  // PHOTECC_SPEC_BUILDER_HPP
