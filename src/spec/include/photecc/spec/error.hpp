// The spec layer's single error currency: every rejected configuration
// — a bad CLI flag, a mistyped JSON field, an out-of-range value —
// surfaces as a SpecError whose message leads with the field path
// ("axes.ber_targets[2]: ..."), so the user is pointed at the exact
// knob to fix instead of an assert or a silent default.
#ifndef PHOTECC_SPEC_ERROR_HPP
#define PHOTECC_SPEC_ERROR_HPP

#include <stdexcept>
#include <string>
#include <utility>

namespace photecc::spec {

class SpecError : public std::runtime_error {
 public:
  SpecError(std::string field, const std::string& message)
      : std::runtime_error(field + ": " + message),
        field_(std::move(field)) {}

  /// The dotted field path ("base.link", "axes.codes[1]", "--threads").
  [[nodiscard]] const std::string& field() const noexcept { return field_; }

 private:
  std::string field_;
};

}  // namespace photecc::spec

#endif  // PHOTECC_SPEC_ERROR_HPP
