// String-keyed extensible registries: the indirection that lets an
// ExperimentSpec stay plain data.  Every axis value a spec names is
// resolved here — link variants to MwsrParams, evaluator names to cell
// evaluators, traffic kinds to TrafficSpec lowerings, policy and
// modulation names to their enums, preset names to whole specs.
// Registries are process-global and append-only: library users may
// register their own variants next to the built-ins and reference them
// from JSON configs without touching this module.
#ifndef PHOTECC_SPEC_REGISTRIES_HPP
#define PHOTECC_SPEC_REGISTRIES_HPP

#include <functional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "photecc/core/manager.hpp"
#include "photecc/env/environment.hpp"
#include "photecc/explore/runner.hpp"
#include "photecc/link/mwsr_channel.hpp"
#include "photecc/math/modulation.hpp"
#include "photecc/spec/error.hpp"
#include "photecc/spec/spec.hpp"

namespace photecc::spec {

/// Insertion-ordered name -> factory map with uniform unknown-name
/// reporting: make() failures are SpecError listing every known name.
template <typename T>
class Registry {
 public:
  using Factory = std::function<T()>;

  /// `kind` names the registry in error messages ("link variant", ...).
  explicit Registry(std::string kind) : kind_(std::move(kind)) {}

  /// Registers a factory; duplicate or empty names are programming
  /// errors (std::invalid_argument).
  void add(std::string name, Factory factory) {
    if (name.empty())
      throw std::invalid_argument(kind_ + " registry: empty name");
    if (contains(name))
      throw std::invalid_argument(kind_ + " registry: duplicate name '" +
                                  name + "'");
    entries_.emplace_back(std::move(name), std::move(factory));
  }

  [[nodiscard]] bool contains(const std::string& name) const {
    for (const auto& [existing, factory] : entries_) {
      (void)factory;
      if (existing == name) return true;
    }
    return false;
  }

  /// Resolves `name`, reporting failures against `field` ("base.link").
  [[nodiscard]] T make(const std::string& name,
                       const std::string& field) const {
    for (const auto& [existing, factory] : entries_)
      if (existing == name) return factory();
    std::string known;
    for (const auto& [existing, factory] : entries_) {
      (void)factory;
      if (!known.empty()) known += ", ";
      known += existing;
    }
    throw SpecError(field, "unknown " + kind_ + " '" + name +
                               "' (known: " + known + ")");
  }

  /// Registered names in insertion order.
  [[nodiscard]] std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [name, factory] : entries_) {
      (void)factory;
      out.push_back(name);
    }
    return out;
  }

 private:
  std::string kind_;
  std::vector<std::pair<std::string, Factory>> entries_;
};

/// Lowers one TrafficEntry to the explore engine's TrafficSpec.
using TrafficLowering =
    std::function<explore::TrafficSpec(const TrafficEntry&)>;

/// Named MwsrParams variants.  Built-ins: "paper" (the paper's 6 cm /
/// 12-ONI channel; aliases "paper-6cm", "paper-6cm-12oni"),
/// "short-2cm-4oni", and waveguide-length-only variants "2 cm", "4 cm",
/// "6 cm", "10 cm", "14 cm".
[[nodiscard]] Registry<link::MwsrParams>& link_registry();

/// Named cell evaluators.  Built-ins: "link" (analytic), "noc"
/// (dynamic simulation), "network" (tiled multi-channel simulation).
/// The spec value "auto" is not an entry — it defers to SweepRunner's
/// section/axis-based choice.
[[nodiscard]] Registry<explore::SweepRunner::Evaluator>&
evaluator_registry();

/// Traffic kinds.  Built-ins: "uniform", "hotspot", "trace" (schema
/// v3: replays a noc::TraceTraffic message file).
[[nodiscard]] Registry<TrafficLowering>& traffic_registry();

/// Lowers one EnvironmentEntry to an env timeline.  The lowering also
/// range-checks the entry (the env factories throw std::invalid_argument
/// for out-of-range values, which validate() rewraps as SpecError).
using EnvironmentLowering =
    std::function<env::EnvironmentTimeline(const EnvironmentEntry&)>;

/// Environment timeline kinds (schema v2).  Built-ins: "constant",
/// "step", "ramp", "phases", "self-heating".
[[nodiscard]] Registry<EnvironmentLowering>& environment_registry();

/// Manager policies, prepopulated from core::all_policies().
[[nodiscard]] Registry<core::Policy>& policy_registry();

/// Signaling formats, prepopulated from math::all_modulations().
[[nodiscard]] Registry<math::Modulation>& modulation_registry();

/// Whole-experiment presets (the grids the CLI and benches ship):
/// "fig6b", "noc", "modulation", "modulation-smoke", "thermal",
/// "network" (tiled multi-channel sweep, schema v3).
[[nodiscard]] Registry<ExperimentSpec>& preset_registry();

}  // namespace photecc::spec

#endif  // PHOTECC_SPEC_REGISTRIES_HPP
