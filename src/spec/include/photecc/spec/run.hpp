// Lowering: ExperimentSpec -> the existing explore engine.  The spec
// layer adds no execution machinery of its own — run() validates,
// resolves every registry name, materialises the ScenarioGrid and hands
// it to SweepRunner, so a spec-driven sweep is byte-identical to the
// hand-assembled grid it replaces (for any thread count, by the
// engine's slot-indexed determinism).
#ifndef PHOTECC_SPEC_RUN_HPP
#define PHOTECC_SPEC_RUN_HPP

#include <vector>

#include "photecc/explore/grid.hpp"
#include "photecc/explore/result.hpp"
#include "photecc/spec/spec.hpp"

namespace photecc::spec {

/// The ScenarioGrid a spec describes.  Validates first; throws
/// SpecError on any unresolvable name or out-of-range value.
[[nodiscard]] explore::ScenarioGrid lower(const ExperimentSpec& spec);

/// The spec's objectives on the explore engine's Objective type.
[[nodiscard]] std::vector<explore::Objective> lower_objectives(
    const ExperimentSpec& spec);

/// Validate, lower and execute: SweepRunner{{spec.threads}} over
/// lower(spec), with the spec's evaluator ("auto" defers to the
/// runner's axis-based choice).
[[nodiscard]] explore::ExperimentResult run(const ExperimentSpec& spec);

}  // namespace photecc::spec

#endif  // PHOTECC_SPEC_RUN_HPP
