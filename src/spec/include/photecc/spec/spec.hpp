// photecc::spec — one declarative, serializable description of a whole
// cross-layer experiment.
//
// An ExperimentSpec is *data*: every knob of the exploration stack —
// link variant, modulation, code menu, BER targets, traffic, gating,
// policy, objectives, evaluator, seed, thread count — as plain
// string-keyed values resolved through the extensible registries of
// registries.hpp.  The same spec can be produced three equivalent ways
// (the fluent SpecBuilder, a JSON document, explore_cli flags) and is
// lowered by run.hpp onto the existing explore::ScenarioGrid /
// SweepRunner engine.
//
// Serialization contract: to_json() is a pure function of the struct
// (canonical key order, axes omitted when undeclared, shortest
// round-trip number formatting), and from_json() is strict (unknown
// keys, wrong types, duplicate keys and unsupported schema versions are
// all SpecError/ParseError with a field path — never a partial spec).
// Hence `spec -> to_json -> from_json -> to_json` is byte-identical.
//
// Schema versioning: the document carries `"photecc_spec": <N>`.  The
// version is bumped only when a field changes meaning or is removed;
// adding optional fields keeps the version.  A reader rejects versions
// it does not know.  Writers emit the *smallest* version that can
// express the spec (a spec without v3 features serialises exactly as
// it did under v2, so existing documents and canonical hashes stay
// byte-stable).  Version history:
//   1 — the original schema (still accepted; a v1 document parses to
//       the same spec it always did).
//   2 — adds the `axes.environments` block (time-varying environment
//       timelines).  An environments block inside a v1 document is
//       rejected with a pointer at the version field.
//   3 — adds the kind-discriminated top-level `network` section (tiled
//       multi-channel topology with per-channel coding and
//       environments) and the "trace" traffic kind (file-driven
//       message timelines).  Either feature inside a v1/v2 document is
//       rejected with a pointer at the version field.
//   4 — adds the "cooling" scheme kind to `axes.codes` and
//       `network.channel_codes`: entries may be objects
//       `{"kind": "cooling", "inner": <code>|"n": <bits>, "weight": w}`
//       (or equivalently "COOL(...)" name strings) naming a
//       weight-bounded cooling code, pure or concatenated with an inner
//       FEC.  A cooling entry inside a v1..v3 document is rejected with
//       a pointer at the version field.
#ifndef PHOTECC_SPEC_SPEC_HPP
#define PHOTECC_SPEC_SPEC_HPP

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "photecc/math/json.hpp"
#include "photecc/spec/error.hpp"

namespace photecc::spec {

/// The newest schema version to_json() can write (it emits the
/// smallest version that expresses the spec).  from_json() accepts
/// every version in [kMinSchemaVersion, kSchemaVersion].
inline constexpr std::uint64_t kSchemaVersion = 4;
inline constexpr std::uint64_t kMinSchemaVersion = 1;

/// Default base seed — the ScenarioGrid default, restated here so a
/// default-constructed spec lowers to a byte-identical grid.
inline constexpr std::uint64_t kDefaultSeed = 0x9e3779b97f4a7c15ULL;

/// One value of the traffic axis, keyed by a traffic-registry kind.
/// The "trace" kind (schema v3) replays a noc::TraceTraffic file and
/// carries only `trace_path` (serialized as "path"); the rate/payload/
/// hotspot fields belong to the generated kinds, exactly as the hotspot
/// fields belong to "hotspot" only.
struct TrafficEntry {
  std::string kind = "uniform";      ///< traffic_registry() key
  double rate_msgs_per_s = 2e8;      ///< aggregate injection rate
  std::uint64_t payload_bits = 4096;
  std::size_t hotspot = 0;           ///< hot tile ("hotspot" kind only)
  double hotspot_fraction = 0.5;     ///< share aimed at the hotspot
  std::string trace_path;            ///< message file ("trace" kind only)

  [[nodiscard]] bool operator==(const TrafficEntry&) const = default;
};

/// One phase of a declarative "phases" environment timeline.
struct EnvironmentPhaseEntry {
  double duration_s = 1e-6;
  double activity = 0.25;
  std::string label;  ///< optional; "" omits the key

  [[nodiscard]] bool operator==(const EnvironmentPhaseEntry&) const = default;
};

/// One value of the environment axis, keyed by an environment-registry
/// kind (schema v2).  Only the fields of the declared kind are
/// serialized; setting fields of another kind is a validation error
/// (mirroring TrafficEntry's hotspot fields).
///
///   constant:     activity
///   step:         at_s, from_activity, to_activity
///   ramp:         start_s, end_s, from_activity, to_activity
///   phases:       phases[], cyclic
///   self-heating: baseline_activity, busy_gain, tau_s
struct EnvironmentEntry {
  std::string kind = "constant";     ///< environment_registry() key
  double activity = 0.25;            ///< constant
  double at_s = 0.0;                 ///< step
  double start_s = 0.0;              ///< ramp
  double end_s = 0.0;                ///< ramp
  double from_activity = 0.25;       ///< step / ramp
  double to_activity = 0.25;         ///< step / ramp
  std::vector<EnvironmentPhaseEntry> phases;  ///< phases
  bool cyclic = true;                ///< phases
  double baseline_activity = 0.25;   ///< self-heating
  double busy_gain = 0.5;            ///< self-heating
  double tau_s = 1e-6;               ///< self-heating

  [[nodiscard]] bool operator==(const EnvironmentEntry&) const = default;
};

/// The kind-discriminated `network` section (schema v3): a tiled
/// multi-channel topology the whole grid evaluates on (it is a base
/// setting, not an axis — every declared axis sweeps on top of it).
/// The only built-in kind is "tiled" (N tiles sharing K MWSR channels,
/// lowered to noc::NetworkSimulator).
struct NetworkEntry {
  std::string kind = "tiled";
  std::size_t tile_count = 16;
  std::size_t channel_count = 4;
  std::string mapping = "interleaved";  ///< "interleaved" or "blocked"
  /// Per-channel pinned codes (one name per channel; "" leaves that
  /// channel on the grid's menu).  Empty = every channel inherits.
  std::vector<std::string> channel_codes;
  /// Per-channel environment timelines (one entry per channel when
  /// non-empty; hot-spot readers vs cool edges).  Empty = every channel
  /// inherits the base link's timeline.
  std::vector<EnvironmentEntry> channel_environments;

  [[nodiscard]] bool operator==(const NetworkEntry&) const = default;
};

/// One dimension of the Pareto extraction the experiment reports.
struct ObjectiveEntry {
  std::string metric;
  bool minimize = true;

  [[nodiscard]] bool operator==(const ObjectiveEntry&) const = default;
};

/// The whole experiment, declaratively.  Empty axis vectors mean "axis
/// not declared" (the grid then holds the base value with no label
/// column), exactly like ScenarioGrid.
struct ExperimentSpec {
  std::string name;                  ///< free-form; "" omits the field
  std::string evaluator = "auto";    ///< "auto" or evaluator_registry() key
  std::size_t threads = 0;           ///< 0 = hardware concurrency

  // Base values applied to every cell before axis overrides.
  std::string base_link = "paper";   ///< link_registry() key
  std::uint64_t seed = kDefaultSeed;
  double noc_horizon_s = 2e-6;

  /// Tiled-network section (schema v3); unset = the classic
  /// single-channel evaluation path, byte-identical to pre-v3 specs.
  std::optional<NetworkEntry> network;

  // Axes (canonical grid order: code, BER, link, ONI, traffic, gating,
  // policy, modulation, environment).
  std::vector<std::string> codes;         ///< ecc registry names
  std::vector<double> ber_targets;
  std::vector<std::string> links;         ///< link_registry() keys
  std::vector<std::size_t> oni_counts;
  std::vector<TrafficEntry> traffic;
  std::vector<bool> laser_gating;
  std::vector<std::string> policies;      ///< core policy names
  std::vector<std::string> modulations;   ///< math modulation names
  std::vector<EnvironmentEntry> environments;  ///< schema v2

  std::vector<ObjectiveEntry> objectives;

  [[nodiscard]] bool operator==(const ExperimentSpec&) const = default;

  /// Canonical JSON document (ends with a newline).
  [[nodiscard]] std::string to_json() const;
};

/// Strict parse + validate.  Throws math::json::ParseError for
/// malformed JSON and SpecError (field path + reason) for everything
/// else: unknown keys, wrong types, unsupported schema version, values
/// the validator rejects.
[[nodiscard]] ExperimentSpec from_json(const std::string& text);

/// Same strictness on an already-parsed document — for callers that
/// carry a spec inside a larger JSON envelope (the serve layer's
/// request lines) and must not re-serialise just to re-parse.  Throws
/// SpecError exactly like from_json; from_json(text) is precisely
/// from_json_value(math::json::parse(text)).
[[nodiscard]] ExperimentSpec from_json_value(
    const math::json::Value& document);

/// Stable content fingerprint of a spec: math::fnv1a64 over the
/// canonical to_json() dump.  Two specs hash equal iff their canonical
/// documents are byte-equal (up to FNV collisions — exact-reuse caches
/// must also compare the canonical bytes).  Because to_json() is
/// byte-stable, this value is stable across runs, platforms and JSON
/// formatting differences of the input document; a test pins the hash
/// of examples/specs/fig6b.json so accidental canonical-form drift
/// breaks loudly.
[[nodiscard]] std::uint64_t canonical_hash(const ExperimentSpec& spec);

/// Semantic validation shared by from_json, SpecBuilder::build and
/// run(): every name resolves in its registry, every number is in
/// range.  Throws SpecError naming the offending field.
void validate(const ExperimentSpec& spec);

}  // namespace photecc::spec

#endif  // PHOTECC_SPEC_SPEC_HPP
