#include "photecc/spec/run.hpp"

#include <utility>

#include "photecc/explore/runner.hpp"
#include "photecc/spec/registries.hpp"

namespace photecc::spec {

explore::ScenarioGrid lower(const ExperimentSpec& spec) {
  validate(spec);

  explore::ScenarioGrid grid;
  grid.base_link(link_registry().make(spec.base_link, "base.link"));
  grid.base_seed(spec.seed);
  grid.noc_horizon(spec.noc_horizon_s);

  if (!spec.codes.empty()) grid.codes(spec.codes);
  if (!spec.ber_targets.empty()) grid.ber_targets(spec.ber_targets);
  if (!spec.links.empty()) {
    std::vector<explore::LinkVariant> variants;
    variants.reserve(spec.links.size());
    for (std::size_t i = 0; i < spec.links.size(); ++i)
      variants.emplace_back(
          spec.links[i],
          link_registry().make(spec.links[i],
                               "axes.links[" + std::to_string(i) + "]"));
    grid.link_variants(std::move(variants));
  }
  if (!spec.oni_counts.empty()) grid.oni_counts(spec.oni_counts);
  if (!spec.traffic.empty()) {
    std::vector<explore::TrafficSpec> patterns;
    patterns.reserve(spec.traffic.size());
    for (std::size_t i = 0; i < spec.traffic.size(); ++i) {
      const TrafficEntry& entry = spec.traffic[i];
      const TrafficLowering lowering = traffic_registry().make(
          entry.kind, "axes.traffic[" + std::to_string(i) + "].kind");
      patterns.push_back(lowering(entry));
    }
    grid.traffic_patterns(std::move(patterns));
  }
  if (!spec.laser_gating.empty()) grid.laser_gating(spec.laser_gating);
  if (!spec.policies.empty()) {
    std::vector<core::Policy> policies;
    policies.reserve(spec.policies.size());
    for (std::size_t i = 0; i < spec.policies.size(); ++i) {
      // core::policy_from_string is the canonical inverse; the registry
      // is only consulted for names it does not know (custom policies
      // and the known-name error listing).
      const auto policy = core::policy_from_string(spec.policies[i]);
      policies.push_back(policy ? *policy
                                : policy_registry().make(
                                      spec.policies[i],
                                      "axes.policies[" +
                                          std::to_string(i) + "]"));
    }
    grid.policies(std::move(policies));
  }
  if (!spec.modulations.empty()) {
    std::vector<math::Modulation> modulations;
    modulations.reserve(spec.modulations.size());
    for (std::size_t i = 0; i < spec.modulations.size(); ++i)
      modulations.push_back(modulation_registry().make(
          spec.modulations[i],
          "axes.modulations[" + std::to_string(i) + "]"));
    grid.modulations(std::move(modulations));
  }
  if (!spec.environments.empty()) {
    std::vector<explore::EnvironmentVariant> variants;
    variants.reserve(spec.environments.size());
    for (std::size_t i = 0; i < spec.environments.size(); ++i) {
      const EnvironmentEntry& entry = spec.environments[i];
      const EnvironmentLowering lowering = environment_registry().make(
          entry.kind, "axes.environments[" + std::to_string(i) + "].kind");
      env::EnvironmentTimeline timeline = lowering(entry);
      std::string label = timeline.label();
      variants.emplace_back(std::move(label), std::move(timeline));
    }
    grid.environments(std::move(variants));
  }
  if (spec.network) {
    const NetworkEntry& entry = *spec.network;
    explore::NetworkSpec net;
    net.tile_count = entry.tile_count;
    net.channel_count = entry.channel_count;
    net.mapping = entry.mapping;
    net.channel_codes = entry.channel_codes;
    net.channel_environments.reserve(entry.channel_environments.size());
    for (std::size_t i = 0; i < entry.channel_environments.size(); ++i) {
      const EnvironmentLowering lowering = environment_registry().make(
          entry.channel_environments[i].kind,
          "network.channel_environments[" + std::to_string(i) + "].kind");
      env::EnvironmentTimeline timeline =
          lowering(entry.channel_environments[i]);
      std::string label = timeline.label();
      net.channel_environments.emplace_back(std::move(label),
                                            std::move(timeline));
    }
    grid.network(std::move(net));
  }
  return grid;
}

std::vector<explore::Objective> lower_objectives(const ExperimentSpec& spec) {
  std::vector<explore::Objective> objectives;
  objectives.reserve(spec.objectives.size());
  for (const ObjectiveEntry& entry : spec.objectives)
    objectives.push_back({entry.metric, entry.minimize});
  return objectives;
}

explore::ExperimentResult run(const ExperimentSpec& spec) {
  const explore::ScenarioGrid grid = lower(spec);
  const explore::SweepRunner runner{{spec.threads}};
  // "auto" — and an explicit "link" on a grid the auto route would give
  // the link evaluator anyway — take the lowered-plan hot path (byte-
  // identical exports); named evaluators otherwise run the legacy
  // per-cell path.
  if (spec.evaluator == "auto" ||
      (spec.evaluator == "link" && !grid.has_noc_axes() &&
       !grid.has_network()))
    return runner.run(grid);
  return runner.run(grid,
                    evaluator_registry().make(spec.evaluator, "evaluator"));
}

}  // namespace photecc::spec
