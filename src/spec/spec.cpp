#include "photecc/spec/spec.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "photecc/cooling/cooling_code.hpp"
#include "photecc/ecc/registry.hpp"
#include "photecc/explore/evaluators.hpp"
#include "photecc/math/hash.hpp"
#include "photecc/math/json.hpp"
#include "photecc/spec/registries.hpp"

namespace photecc::spec {

namespace json = math::json;

// --- Serialization -----------------------------------------------------
//
// Canonical emission: fixed key order (photecc_spec, name, evaluator,
// threads, base, axes in grid order, objectives), unset axes and the
// empty name/objectives omitted, numbers via to_chars.  from_json below
// reconstructs the exact struct, so to_json(from_json(to_json(s))) ==
// to_json(s) byte for byte.

namespace {

std::string string_array(const std::vector<std::string>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out += ", ";
    out += json::escape(values[i]);
  }
  return out + "]";
}

/// One codes-axis / channel_codes entry.  Cooling codes (schema v4)
/// serialize as kind-discriminated objects so the document states the
/// weight bound explicitly; every other code name stays a plain string,
/// byte-identical to the pre-v4 form.
std::string code_entry(const std::string& name) {
  if (cooling::is_cooling_name(name)) {
    try {
      const cooling::CoolingName parsed = *cooling::parse_cooling_name(name);
      std::string out = "{\"kind\": \"cooling\", ";
      out += parsed.pure ? "\"n\": " + std::to_string(parsed.length)
                         : "\"inner\": " + json::escape(parsed.inner);
      return out + ", \"weight\": " + std::to_string(parsed.weight) + "}";
    } catch (const std::invalid_argument&) {
      // Malformed COOL(...) — validate() rejects it; emit verbatim.
    }
  }
  return json::escape(name);
}

std::string code_array(const std::vector<std::string>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out += ", ";
    out += code_entry(values[i]);
  }
  return out + "]";
}

std::string double_array(const std::vector<double>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out += ", ";
    out += json::number(values[i]);
  }
  return out + "]";
}

std::string size_array(const std::vector<std::size_t>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out += ", ";
    out += std::to_string(values[i]);
  }
  return out + "]";
}

std::string bool_array(const std::vector<bool>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out += ", ";
    out += values[i] ? "true" : "false";
  }
  return out + "]";
}

/// One environment entry as a single-line `{...}` object (without
/// surrounding indentation) — shared by the environments axis and the
/// network section's channel_environments.
std::string environment_object(const EnvironmentEntry& e) {
  std::string out = "{\"kind\": " + json::escape(e.kind);
  if (e.kind == "constant") {
    out += ", \"activity\": " + json::number(e.activity);
  } else if (e.kind == "step") {
    out += ", \"at_s\": " + json::number(e.at_s) +
           ", \"from_activity\": " + json::number(e.from_activity) +
           ", \"to_activity\": " + json::number(e.to_activity);
  } else if (e.kind == "ramp") {
    out += ", \"start_s\": " + json::number(e.start_s) +
           ", \"end_s\": " + json::number(e.end_s) +
           ", \"from_activity\": " + json::number(e.from_activity) +
           ", \"to_activity\": " + json::number(e.to_activity);
  } else if (e.kind == "phases") {
    out += ", \"cyclic\": " + std::string(e.cyclic ? "true" : "false") +
           ", \"phases\": [";
    for (std::size_t p = 0; p < e.phases.size(); ++p) {
      if (p) out += ", ";
      out += "{\"duration_s\": " + json::number(e.phases[p].duration_s) +
             ", \"activity\": " + json::number(e.phases[p].activity);
      if (!e.phases[p].label.empty())
        out += ", \"label\": " + json::escape(e.phases[p].label);
      out += "}";
    }
    out += "]";
  } else if (e.kind == "self-heating") {
    out += ", \"baseline_activity\": " + json::number(e.baseline_activity) +
           ", \"busy_gain\": " + json::number(e.busy_gain) +
           ", \"tau_s\": " + json::number(e.tau_s);
  }
  return out + "}";
}

std::string environment_array(const std::vector<EnvironmentEntry>& entries) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    out += "      " + environment_object(entries[i]);
    out += i + 1 < entries.size() ? ",\n" : "\n";
  }
  return out + "    ]";
}

std::string traffic_array(const std::vector<TrafficEntry>& entries) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const TrafficEntry& e = entries[i];
    out += "      {\"kind\": " + json::escape(e.kind);
    if (e.kind == "trace") {
      out += ", \"path\": " + json::escape(e.trace_path);
    } else {
      out += ", \"rate_msgs_per_s\": " + json::number(e.rate_msgs_per_s) +
             ", \"payload_bits\": " + std::to_string(e.payload_bits);
      if (e.kind == "hotspot") {
        out += ", \"hotspot\": " + std::to_string(e.hotspot) +
               ", \"hotspot_fraction\": " + json::number(e.hotspot_fraction);
      }
    }
    out += i + 1 < entries.size() ? "},\n" : "}\n";
  }
  return out + "    ]";
}

/// True when the spec uses a v3 feature; to_json then writes 3, else 2
/// (the minimal-version rule that keeps pre-v3 documents and their
/// canonical hashes byte-stable).
bool needs_schema_v3(const ExperimentSpec& spec) {
  if (spec.network) return true;
  for (const TrafficEntry& entry : spec.traffic)
    if (entry.kind == "trace") return true;
  return false;
}

/// True when the spec uses a v4 feature (a cooling code on either code
/// axis); composes with needs_schema_v3 under the same minimal-version
/// rule.
bool needs_schema_v4(const ExperimentSpec& spec) {
  for (const std::string& name : spec.codes)
    if (cooling::is_cooling_name(name)) return true;
  if (spec.network)
    for (const std::string& name : spec.network->channel_codes)
      if (cooling::is_cooling_name(name)) return true;
  return false;
}

}  // namespace

std::string ExperimentSpec::to_json() const {
  std::ostringstream os;
  os << "{\n  \"photecc_spec\": "
     << (needs_schema_v4(*this)   ? 4
         : needs_schema_v3(*this) ? 3
                                  : 2);
  if (!name.empty()) os << ",\n  \"name\": " << json::escape(name);
  os << ",\n  \"evaluator\": " << json::escape(evaluator);
  os << ",\n  \"threads\": " << threads;
  os << ",\n  \"base\": {\n"
     << "    \"link\": " << json::escape(base_link) << ",\n"
     << "    \"seed\": " << seed << ",\n"
     << "    \"noc_horizon_s\": " << json::number(noc_horizon_s) << "\n"
     << "  }";

  if (network) {
    const NetworkEntry& n = *network;
    os << ",\n  \"network\": {\n"
       << "    \"kind\": " << json::escape(n.kind) << ",\n"
       << "    \"tile_count\": " << n.tile_count << ",\n"
       << "    \"channel_count\": " << n.channel_count << ",\n"
       << "    \"mapping\": " << json::escape(n.mapping);
    if (!n.channel_codes.empty())
      os << ",\n    \"channel_codes\": " << code_array(n.channel_codes);
    if (!n.channel_environments.empty()) {
      os << ",\n    \"channel_environments\": [\n";
      for (std::size_t i = 0; i < n.channel_environments.size(); ++i) {
        os << "      " << environment_object(n.channel_environments[i]);
        os << (i + 1 < n.channel_environments.size() ? ",\n" : "\n");
      }
      os << "    ]";
    }
    os << "\n  }";
  }

  std::vector<std::string> axis_lines;
  if (!codes.empty())
    axis_lines.push_back("\"codes\": " + code_array(codes));
  if (!ber_targets.empty())
    axis_lines.push_back("\"ber_targets\": " + double_array(ber_targets));
  if (!links.empty())
    axis_lines.push_back("\"links\": " + string_array(links));
  if (!oni_counts.empty())
    axis_lines.push_back("\"oni_counts\": " + size_array(oni_counts));
  if (!traffic.empty())
    axis_lines.push_back("\"traffic\": " + traffic_array(traffic));
  if (!laser_gating.empty())
    axis_lines.push_back("\"laser_gating\": " + bool_array(laser_gating));
  if (!policies.empty())
    axis_lines.push_back("\"policies\": " + string_array(policies));
  if (!modulations.empty())
    axis_lines.push_back("\"modulations\": " + string_array(modulations));
  if (!environments.empty())
    axis_lines.push_back("\"environments\": " +
                         environment_array(environments));
  if (!axis_lines.empty()) {
    os << ",\n  \"axes\": {\n";
    for (std::size_t i = 0; i < axis_lines.size(); ++i) {
      os << "    " << axis_lines[i];
      os << (i + 1 < axis_lines.size() ? ",\n" : "\n");
    }
    os << "  }";
  }

  if (!objectives.empty()) {
    os << ",\n  \"objectives\": [\n";
    for (std::size_t i = 0; i < objectives.size(); ++i) {
      os << "    {\"metric\": " << json::escape(objectives[i].metric)
         << ", \"minimize\": " << (objectives[i].minimize ? "true" : "false")
         << (i + 1 < objectives.size() ? "},\n" : "}\n");
    }
    os << "  ]";
  }
  os << "\n}\n";
  return os.str();
}

// --- Parsing -----------------------------------------------------------

namespace {

/// Rewraps a json::TypeError as a SpecError at `path`, so "expected
/// number, got string" arrives with the offending field attached.
template <typename Fn>
auto at_path(const std::string& path, Fn&& fn) -> decltype(fn()) {
  try {
    return fn();
  } catch (const json::TypeError& e) {
    throw SpecError(path, e.what());
  }
}

std::string expect_string(const json::Value& v, const std::string& path) {
  return at_path(path, [&] { return v.as_string(); });
}

double expect_double(const json::Value& v, const std::string& path) {
  return at_path(path, [&] { return v.as_double(); });
}

bool expect_bool(const json::Value& v, const std::string& path) {
  return at_path(path, [&] { return v.as_bool(); });
}

std::uint64_t expect_uint64(const json::Value& v, const std::string& path) {
  return at_path(path, [&] { return v.as_uint64(); });
}

const json::Value::Array& expect_array(const json::Value& v,
                                       const std::string& path) {
  return at_path(path, [&]() -> const json::Value::Array& {
    const auto& array = v.as_array();
    if (array.empty())
      throw SpecError(
          path, "must not be empty (omit the key to leave it undeclared)");
    return array;
  });
}

const json::Value::Object& expect_object(const json::Value& v,
                                         const std::string& path) {
  return at_path(path, [&]() -> const json::Value::Object& {
    return v.as_object();
  });
}

std::string element_path(const std::string& path, std::size_t i) {
  return path + "[" + std::to_string(i) + "]";
}

[[noreturn]] void unknown_key(const std::string& path,
                              std::string_view expected) {
  throw SpecError(path,
                  "unknown key (expected: " + std::string(expected) + ")");
}

std::vector<std::string> parse_string_array(const json::Value& v,
                                            const std::string& path) {
  std::vector<std::string> out;
  const auto& array = expect_array(v, path);
  for (std::size_t i = 0; i < array.size(); ++i)
    out.push_back(expect_string(array[i], element_path(path, i)));
  return out;
}

[[noreturn]] void cooling_needs_v4(std::uint64_t version) {
  throw SpecError("photecc_spec",
                  "cooling codes need schema version >= 4, "
                  "document declares " + std::to_string(version));
}

/// One codes-axis / channel_codes entry: a plain code-name string, or
/// (schema v4) the kind-discriminated cooling object, canonicalised to
/// its COOL(...) name so the spec struct stays a vector of registry
/// names.  COOL(...) *strings* are gated on v4 too — a pre-v4 document
/// cannot smuggle the feature past the version check.
std::string parse_code_entry(const json::Value& v, const std::string& path,
                             std::uint64_t version) {
  if (v.type() == json::Value::Type::kString) {
    const std::string& name = v.as_string();
    if (cooling::is_cooling_name(name) && version < 4)
      cooling_needs_v4(version);
    return name;
  }
  // Anything that is neither a name string nor a cooling object is a
  // plain type error on the entry, not a version problem.
  if (v.type() != json::Value::Type::kObject)
    (void)expect_string(v, path);
  if (version < 4) cooling_needs_v4(version);
  std::string kind;
  bool saw_kind = false;
  std::optional<std::string> inner;
  std::optional<std::uint64_t> length;
  std::optional<std::uint64_t> weight;
  for (const auto& [key, value] : expect_object(v, path)) {
    const std::string key_path = path + "." + key;
    if (key == "kind") {
      kind = expect_string(value, key_path);
      saw_kind = true;
    } else if (key == "inner") {
      inner = expect_string(value, key_path);
    } else if (key == "n") {
      length = expect_uint64(value, key_path);
    } else if (key == "weight") {
      weight = expect_uint64(value, key_path);
    } else {
      unknown_key(key_path, "kind, inner, n, weight");
    }
  }
  if (!saw_kind)
    throw SpecError(path + ".kind",
                    "required (the only scheme kind: cooling)");
  if (kind != "cooling")
    throw SpecError(path + ".kind",
                    "unknown scheme kind '" + kind + "' (known: cooling)");
  if (inner.has_value() == length.has_value())
    throw SpecError(path,
                    "a cooling entry takes exactly one of 'inner' "
                    "(concatenated with a FEC) or 'n' (pure)");
  if (!weight)
    throw SpecError(path + ".weight", "required (the wire weight bound)");
  return inner ? cooling::cooling_name(
                     *inner, static_cast<std::size_t>(*weight))
               : cooling::cooling_name(
                     static_cast<std::size_t>(*length),
                     static_cast<std::size_t>(*weight));
}

std::vector<std::string> parse_code_array(const json::Value& v,
                                          const std::string& path,
                                          std::uint64_t version) {
  std::vector<std::string> out;
  const auto& array = expect_array(v, path);
  for (std::size_t i = 0; i < array.size(); ++i)
    out.push_back(
        parse_code_entry(array[i], element_path(path, i), version));
  return out;
}

std::vector<double> parse_double_array(const json::Value& v,
                                       const std::string& path) {
  std::vector<double> out;
  const auto& array = expect_array(v, path);
  for (std::size_t i = 0; i < array.size(); ++i)
    out.push_back(expect_double(array[i], element_path(path, i)));
  return out;
}

std::vector<std::size_t> parse_size_array(const json::Value& v,
                                          const std::string& path) {
  std::vector<std::size_t> out;
  const auto& array = expect_array(v, path);
  for (std::size_t i = 0; i < array.size(); ++i)
    out.push_back(static_cast<std::size_t>(
        expect_uint64(array[i], element_path(path, i))));
  return out;
}

std::vector<bool> parse_bool_array(const json::Value& v,
                                   const std::string& path) {
  std::vector<bool> out;
  const auto& array = expect_array(v, path);
  for (std::size_t i = 0; i < array.size(); ++i)
    out.push_back(expect_bool(array[i], element_path(path, i)));
  return out;
}

TrafficEntry parse_traffic_entry(const json::Value& v,
                                 const std::string& path,
                                 std::uint64_t version) {
  TrafficEntry entry;
  bool saw_kind = false;
  for (const auto& [key, value] : expect_object(v, path)) {
    const std::string key_path = path + "." + key;
    if (key == "kind") {
      entry.kind = expect_string(value, key_path);
      saw_kind = true;
    } else if (key == "rate_msgs_per_s") {
      entry.rate_msgs_per_s = expect_double(value, key_path);
    } else if (key == "payload_bits") {
      entry.payload_bits = expect_uint64(value, key_path);
    } else if (key == "hotspot") {
      entry.hotspot =
          static_cast<std::size_t>(expect_uint64(value, key_path));
    } else if (key == "hotspot_fraction") {
      entry.hotspot_fraction = expect_double(value, key_path);
    } else if (key == "path") {
      entry.trace_path = expect_string(value, key_path);
    } else {
      unknown_key(key_path,
                  "kind, rate_msgs_per_s, payload_bits, hotspot, "
                  "hotspot_fraction, path");
    }
  }
  if (!saw_kind)
    throw SpecError(path + ".kind",
                    "required (one of: uniform, hotspot, trace)");
  if (entry.kind == "trace" && version < 3)
    throw SpecError("photecc_spec",
                    "traffic kind 'trace' needs schema version >= 3, "
                    "document declares " + std::to_string(version));
  if (entry.kind != "hotspot" &&
      (v.find("hotspot") != nullptr || v.find("hotspot_fraction") != nullptr))
    throw SpecError(path, "hotspot / hotspot_fraction are only valid for "
                          "kind 'hotspot', got kind '" + entry.kind + "'");
  if (entry.kind != "trace" && v.find("path") != nullptr)
    throw SpecError(path, "path is only valid for kind 'trace', got kind '" +
                              entry.kind + "'");
  if (entry.kind == "trace" &&
      (v.find("rate_msgs_per_s") != nullptr ||
       v.find("payload_bits") != nullptr))
    throw SpecError(path,
                    "rate_msgs_per_s / payload_bits are not valid for kind "
                    "'trace' (the trace file carries the schedule)");
  return entry;
}

EnvironmentPhaseEntry parse_environment_phase(const json::Value& v,
                                              const std::string& path) {
  EnvironmentPhaseEntry phase;
  for (const auto& [key, value] : expect_object(v, path)) {
    const std::string key_path = path + "." + key;
    if (key == "duration_s") {
      phase.duration_s = expect_double(value, key_path);
    } else if (key == "activity") {
      phase.activity = expect_double(value, key_path);
    } else if (key == "label") {
      phase.label = expect_string(value, key_path);
    } else {
      unknown_key(key_path, "duration_s, activity, label");
    }
  }
  return phase;
}

EnvironmentEntry parse_environment_entry(const json::Value& v,
                                         const std::string& path) {
  EnvironmentEntry entry;
  bool saw_kind = false;
  std::vector<std::string> present;
  for (const auto& [key, value] : expect_object(v, path)) {
    const std::string key_path = path + "." + key;
    if (key == "kind") {
      entry.kind = expect_string(value, key_path);
      saw_kind = true;
      continue;
    }
    present.push_back(key);
    if (key == "activity") {
      entry.activity = expect_double(value, key_path);
    } else if (key == "at_s") {
      entry.at_s = expect_double(value, key_path);
    } else if (key == "start_s") {
      entry.start_s = expect_double(value, key_path);
    } else if (key == "end_s") {
      entry.end_s = expect_double(value, key_path);
    } else if (key == "from_activity") {
      entry.from_activity = expect_double(value, key_path);
    } else if (key == "to_activity") {
      entry.to_activity = expect_double(value, key_path);
    } else if (key == "cyclic") {
      entry.cyclic = expect_bool(value, key_path);
    } else if (key == "phases") {
      const auto& array = expect_array(value, key_path);
      for (std::size_t i = 0; i < array.size(); ++i)
        entry.phases.push_back(parse_environment_phase(
            array[i], element_path(key_path, i)));
    } else if (key == "baseline_activity") {
      entry.baseline_activity = expect_double(value, key_path);
    } else if (key == "busy_gain") {
      entry.busy_gain = expect_double(value, key_path);
    } else if (key == "tau_s") {
      entry.tau_s = expect_double(value, key_path);
    } else {
      unknown_key(key_path,
                  "kind, activity, at_s, start_s, end_s, from_activity, "
                  "to_activity, phases, cyclic, baseline_activity, "
                  "busy_gain, tau_s");
    }
  }
  if (!saw_kind)
    throw SpecError(path + ".kind",
                    "required (one of: constant, step, ramp, phases, "
                    "self-heating)");
  // Keys must match the declared kind; otherwise to_json() would drop
  // them silently and break the round trip (same rule as traffic's
  // hotspot fields).  Unknown kinds fall through to validate(), which
  // reports them against the registry.
  static const std::vector<std::pair<std::string, std::vector<std::string>>>
      allowed{{"constant", {"activity"}},
              {"step", {"at_s", "from_activity", "to_activity"}},
              {"ramp", {"start_s", "end_s", "from_activity", "to_activity"}},
              {"phases", {"phases", "cyclic"}},
              {"self-heating", {"baseline_activity", "busy_gain", "tau_s"}}};
  for (const auto& [kind, keys] : allowed) {
    if (kind != entry.kind) continue;
    for (const std::string& key : present) {
      if (std::find(keys.begin(), keys.end(), key) == keys.end())
        throw SpecError(path + "." + key,
                        "not valid for environment kind '" + entry.kind +
                            "'");
    }
  }
  return entry;
}

void parse_base(const json::Value& v, ExperimentSpec& spec) {
  for (const auto& [key, value] : expect_object(v, "base")) {
    const std::string key_path = "base." + key;
    if (key == "link") {
      spec.base_link = expect_string(value, key_path);
    } else if (key == "seed") {
      spec.seed = expect_uint64(value, key_path);
    } else if (key == "noc_horizon_s") {
      spec.noc_horizon_s = expect_double(value, key_path);
    } else {
      unknown_key(key_path, "link, seed, noc_horizon_s");
    }
  }
}

void parse_axes(const json::Value& v, ExperimentSpec& spec,
                std::uint64_t version) {
  for (const auto& [key, value] : expect_object(v, "axes")) {
    const std::string key_path = "axes." + key;
    if (key == "codes") {
      spec.codes = parse_code_array(value, key_path, version);
    } else if (key == "ber_targets") {
      spec.ber_targets = parse_double_array(value, key_path);
    } else if (key == "links") {
      spec.links = parse_string_array(value, key_path);
    } else if (key == "oni_counts") {
      spec.oni_counts = parse_size_array(value, key_path);
    } else if (key == "traffic") {
      const auto& array = expect_array(value, key_path);
      for (std::size_t i = 0; i < array.size(); ++i)
        spec.traffic.push_back(parse_traffic_entry(
            array[i], element_path(key_path, i), version));
    } else if (key == "laser_gating") {
      spec.laser_gating = parse_bool_array(value, key_path);
    } else if (key == "policies") {
      spec.policies = parse_string_array(value, key_path);
    } else if (key == "modulations") {
      spec.modulations = parse_string_array(value, key_path);
    } else if (key == "environments") {
      if (version < 2)
        throw SpecError("photecc_spec",
                        "axes.environments needs schema version >= 2, "
                        "document declares " + std::to_string(version));
      const auto& array = expect_array(value, key_path);
      for (std::size_t i = 0; i < array.size(); ++i)
        spec.environments.push_back(
            parse_environment_entry(array[i], element_path(key_path, i)));
    } else {
      unknown_key(key_path,
                  "codes, ber_targets, links, oni_counts, traffic, "
                  "laser_gating, policies, modulations, environments");
    }
  }
}

void parse_network(const json::Value& v, ExperimentSpec& spec,
                   std::uint64_t version) {
  if (version < 3)
    throw SpecError("photecc_spec",
                    "the network section needs schema version >= 3, "
                    "document declares " + std::to_string(version));
  NetworkEntry entry;
  bool saw_kind = false;
  for (const auto& [key, value] : expect_object(v, "network")) {
    const std::string key_path = "network." + key;
    if (key == "kind") {
      entry.kind = expect_string(value, key_path);
      saw_kind = true;
    } else if (key == "tile_count") {
      entry.tile_count =
          static_cast<std::size_t>(expect_uint64(value, key_path));
    } else if (key == "channel_count") {
      entry.channel_count =
          static_cast<std::size_t>(expect_uint64(value, key_path));
    } else if (key == "mapping") {
      entry.mapping = expect_string(value, key_path);
    } else if (key == "channel_codes") {
      entry.channel_codes = parse_code_array(value, key_path, version);
    } else if (key == "channel_environments") {
      const auto& array = expect_array(value, key_path);
      for (std::size_t i = 0; i < array.size(); ++i)
        entry.channel_environments.push_back(parse_environment_entry(
            array[i], element_path(key_path, i)));
    } else {
      unknown_key(key_path,
                  "kind, tile_count, channel_count, mapping, "
                  "channel_codes, channel_environments");
    }
  }
  if (!saw_kind)
    throw SpecError("network.kind", "required (the only built-in: tiled)");
  spec.network = std::move(entry);
}

void parse_objectives(const json::Value& v, ExperimentSpec& spec) {
  const auto& array = expect_array(v, "objectives");
  for (std::size_t i = 0; i < array.size(); ++i) {
    const std::string entry_path = element_path("objectives", i);
    ObjectiveEntry entry;
    bool saw_metric = false;
    for (const auto& [key, value] : expect_object(array[i], entry_path)) {
      const std::string key_path = entry_path + "." + key;
      if (key == "metric") {
        entry.metric = expect_string(value, key_path);
        saw_metric = true;
      } else if (key == "minimize") {
        entry.minimize = expect_bool(value, key_path);
      } else {
        unknown_key(key_path, "metric, minimize");
      }
    }
    if (!saw_metric) throw SpecError(entry_path + ".metric", "required");
    spec.objectives.push_back(std::move(entry));
  }
}

}  // namespace

ExperimentSpec from_json(const std::string& text) {
  return from_json_value(json::parse(text));
}

ExperimentSpec from_json_value(const json::Value& document) {
  const auto& members = expect_object(document, "document");

  // Version first: a document from a future schema should fail on the
  // version mismatch, not on whatever unknown key happens to come first.
  const json::Value* version = document.find("photecc_spec");
  if (version == nullptr)
    throw SpecError("photecc_spec",
                    "required (the schema version; current: " +
                        std::to_string(kSchemaVersion) + ")");
  const std::uint64_t parsed_version =
      expect_uint64(*version, "photecc_spec");
  if (parsed_version < kMinSchemaVersion || parsed_version > kSchemaVersion)
    throw SpecError("photecc_spec",
                    "unsupported schema version " +
                        std::to_string(parsed_version) + " (supported: " +
                        std::to_string(kMinSchemaVersion) + ".." +
                        std::to_string(kSchemaVersion) + ")");

  ExperimentSpec spec;
  for (const auto& [key, value] : members) {
    if (key == "photecc_spec") {
      continue;  // handled above
    } else if (key == "name") {
      spec.name = expect_string(value, key);
    } else if (key == "evaluator") {
      spec.evaluator = expect_string(value, key);
    } else if (key == "threads") {
      spec.threads = static_cast<std::size_t>(expect_uint64(value, key));
    } else if (key == "base") {
      parse_base(value, spec);
    } else if (key == "network") {
      parse_network(value, spec, parsed_version);
    } else if (key == "axes") {
      parse_axes(value, spec, parsed_version);
    } else if (key == "objectives") {
      parse_objectives(value, spec);
    } else {
      unknown_key(key,
                  "photecc_spec, name, evaluator, threads, base, network, "
                  "axes, objectives");
    }
  }
  validate(spec);
  return spec;
}

std::uint64_t canonical_hash(const ExperimentSpec& spec) {
  return math::fnv1a64(spec.to_json());
}

// --- Validation --------------------------------------------------------

namespace {

void check_finite_positive(double value, const std::string& path) {
  if (!std::isfinite(value) || value <= 0.0)
    throw SpecError(path, "must be a finite value > 0, got " +
                              json::number(value));
}

/// Smallest ONI count any cell of the spec can have: the oni_counts
/// axis when declared, else the link-variant axis, else the base link.
/// Hotspot indices must fit the smallest count (every traffic entry is
/// crossed with every ONI/link value).
std::size_t min_oni_count(const ExperimentSpec& spec) {
  std::size_t min_oni = std::numeric_limits<std::size_t>::max();
  if (!spec.oni_counts.empty()) {
    for (const std::size_t count : spec.oni_counts)
      min_oni = std::min(min_oni, count);
  } else if (!spec.links.empty()) {
    for (std::size_t i = 0; i < spec.links.size(); ++i)
      min_oni = std::min(
          min_oni, link_registry()
                       .make(spec.links[i], element_path("axes.links", i))
                       .oni_count);
  } else {
    min_oni = link_registry().make(spec.base_link, "base.link").oni_count;
  }
  return min_oni;
}

/// The evaluator the spec will actually use: "auto" resolves exactly
/// like SweepRunner — the network evaluator when a network section is
/// declared, else the NoC evaluator when any NoC axis is declared.
std::string resolved_evaluator(const ExperimentSpec& spec) {
  if (spec.evaluator != "auto") return spec.evaluator;
  if (spec.network) return "network";
  const bool has_noc_axes = !spec.traffic.empty() ||
                            !spec.laser_gating.empty() ||
                            !spec.policies.empty();
  return has_noc_axes ? "noc" : "link";
}

/// Metric names an objective may reference, given the evaluator the
/// spec will actually use — nullopt for custom registered evaluators
/// (their metric sets are unknown here).  The simulation evaluators'
/// vocabulary grows with the spec: the closed-loop environment columns
/// when any timeline is declared, and the per-channel "ch<k>_<metric>"
/// columns of a network section.
std::optional<std::vector<std::string>> known_objective_metrics(
    const ExperimentSpec& spec) {
  const std::string evaluator = resolved_evaluator(spec);
  if (evaluator == "link") return explore::link_cell_metric_names();
  if (evaluator != "noc" && evaluator != "network") return std::nullopt;
  std::vector<std::string> metrics = explore::noc_cell_metric_names();
  const bool has_environment =
      !spec.environments.empty() ||
      (spec.network && !spec.network->channel_environments.empty());
  if (has_environment)
    for (const std::string& name : explore::noc_env_metric_names())
      metrics.push_back(name);
  if (evaluator == "network" && spec.network) {
    for (std::size_t ch = 0; ch < spec.network->channel_count; ++ch)
      for (const std::string& name : explore::network_channel_metric_names())
        metrics.push_back("ch" + std::to_string(ch) + "_" + name);
  }
  return metrics;
}

}  // namespace

void validate(const ExperimentSpec& spec) {
  // The COOL(...) family resolves through the ecc factory hook; make
  // sure it is installed before any make_code call below.
  cooling::register_cooling_codes();

  if (spec.evaluator != "auto" &&
      !evaluator_registry().contains(spec.evaluator)) {
    std::string known = "auto";
    for (const auto& name : evaluator_registry().names())
      known += ", " + name;
    throw SpecError("evaluator", "unknown evaluator '" + spec.evaluator +
                                     "' (known: " + known + ")");
  }

  (void)link_registry().make(spec.base_link, "base.link");
  check_finite_positive(spec.noc_horizon_s, "base.noc_horizon_s");

  for (std::size_t i = 0; i < spec.codes.size(); ++i) {
    try {
      (void)ecc::make_code(spec.codes[i]);
    } catch (const std::invalid_argument&) {
      throw SpecError(element_path("axes.codes", i),
                      "unknown code '" + spec.codes[i] + "'");
    }
  }
  for (std::size_t i = 0; i < spec.ber_targets.size(); ++i) {
    const double ber = spec.ber_targets[i];
    if (!std::isfinite(ber) || ber <= 0.0 || ber >= 0.5)
      throw SpecError(element_path("axes.ber_targets", i),
                      "value " + json::number(ber) +
                          " outside the BER range (0, 0.5)");
  }
  for (std::size_t i = 0; i < spec.links.size(); ++i)
    (void)link_registry().make(spec.links[i],
                               element_path("axes.links", i));
  for (std::size_t i = 0; i < spec.oni_counts.size(); ++i) {
    if (spec.oni_counts[i] < 2)
      throw SpecError(element_path("axes.oni_counts", i),
                      "an MWSR channel needs >= 2 ONIs (writers + the "
                      "reader), got " + std::to_string(spec.oni_counts[i]));
  }
  for (std::size_t i = 0; i < spec.traffic.size(); ++i) {
    const TrafficEntry& entry = spec.traffic[i];
    const std::string entry_path = element_path("axes.traffic", i);
    (void)traffic_registry().make(entry.kind, entry_path + ".kind");
    if (entry.kind == "trace") {
      // The trace file carries the whole schedule; every generator
      // field must stay at its default or to_json() would silently
      // drop it (same round-trip rule as the hotspot fields below).
      if (entry.trace_path.empty())
        throw SpecError(entry_path + ".path", "required for kind 'trace'");
      if (entry.rate_msgs_per_s != TrafficEntry{}.rate_msgs_per_s ||
          entry.payload_bits != TrafficEntry{}.payload_bits)
        throw SpecError(entry_path,
                        "rate_msgs_per_s / payload_bits are not valid for "
                        "kind 'trace' (the trace file carries the schedule)");
    } else {
      if (!entry.trace_path.empty())
        throw SpecError(entry_path,
                        "path is only valid for kind 'trace', got kind '" +
                            entry.kind + "'");
      check_finite_positive(entry.rate_msgs_per_s,
                            entry_path + ".rate_msgs_per_s");
      if (entry.payload_bits == 0)
        throw SpecError(entry_path + ".payload_bits", "must be > 0");
    }
    if (entry.kind != "hotspot" &&
        (entry.hotspot != TrafficEntry{}.hotspot ||
         entry.hotspot_fraction != TrafficEntry{}.hotspot_fraction))
      // Mirrors the JSON reader's rejection of these keys on other
      // kinds; otherwise to_json() would silently drop the values and
      // break the struct-level round trip.
      throw SpecError(entry_path,
                      "hotspot / hotspot_fraction are only valid for kind "
                      "'hotspot', got kind '" + entry.kind + "'");
    if (entry.kind == "hotspot") {
      if (!std::isfinite(entry.hotspot_fraction) ||
          entry.hotspot_fraction < 0.0 || entry.hotspot_fraction > 1.0)
        throw SpecError(entry_path + ".hotspot_fraction",
                        "value " + json::number(entry.hotspot_fraction) +
                            " outside [0, 1]");
      // Hotspot indices address tiles: the network's tile count when a
      // network section is declared, else the smallest ONI count any
      // cell can take.
      if (const std::size_t tiles = spec.network ? spec.network->tile_count
                                                 : min_oni_count(spec);
          entry.hotspot >= tiles)
        throw SpecError(entry_path + ".hotspot",
                        "tile index " + std::to_string(entry.hotspot) +
                            " out of range for the smallest tile count " +
                            std::to_string(tiles) + " in this spec");
    }
  }
  for (std::size_t i = 0; i < spec.policies.size(); ++i)
    (void)policy_registry().make(spec.policies[i],
                                 element_path("axes.policies", i));
  for (std::size_t i = 0; i < spec.modulations.size(); ++i)
    (void)modulation_registry().make(spec.modulations[i],
                                     element_path("axes.modulations", i));
  for (std::size_t i = 0; i < spec.environments.size(); ++i) {
    const EnvironmentEntry& entry = spec.environments[i];
    const std::string entry_path = element_path("axes.environments", i);
    const EnvironmentLowering lowering =
        environment_registry().make(entry.kind, entry_path + ".kind");
    // The env factories range-check everything (activities in [0, 1],
    // ordered ramp endpoints, positive durations/tau); rewrap their
    // exceptions with the offending entry's field path.
    try {
      (void)lowering(entry);
    } catch (const std::invalid_argument& e) {
      throw SpecError(entry_path, e.what());
    }
    // The link evaluator solves one static operating point (the t = 0
    // sample): a time-varying timeline would silently collapse to its
    // initial value.  Only the NoC evaluator (or a custom one) plays
    // the dynamics out.
    if (entry.kind != "constant" && resolved_evaluator(spec) == "link")
      throw SpecError(entry_path + ".kind",
                      "time-varying environment '" + entry.kind +
                          "' needs the 'noc' evaluator (the link "
                          "evaluator solves at the t = 0 sample); use "
                          "kind 'constant' or declare a NoC axis or "
                          "evaluator");
  }
  if (spec.network) {
    const NetworkEntry& net = *spec.network;
    if (net.kind != "tiled")
      throw SpecError("network.kind", "unknown network kind '" + net.kind +
                                          "' (known: tiled)");
    if (net.tile_count < 2)
      throw SpecError("network.tile_count",
                      "a tiled network needs >= 2 tiles, got " +
                          std::to_string(net.tile_count));
    if (net.channel_count < 1 || net.channel_count > net.tile_count)
      throw SpecError("network.channel_count",
                      "must be in [1, tile_count], got " +
                          std::to_string(net.channel_count));
    if (net.mapping != "interleaved" && net.mapping != "blocked")
      throw SpecError("network.mapping", "unknown mapping '" + net.mapping +
                                             "' (known: interleaved, "
                                             "blocked)");
    if (!net.channel_codes.empty() &&
        net.channel_codes.size() != net.channel_count)
      throw SpecError("network.channel_codes",
                      "must name one code per channel (" +
                          std::to_string(net.channel_count) + "), got " +
                          std::to_string(net.channel_codes.size()));
    for (std::size_t i = 0; i < net.channel_codes.size(); ++i) {
      if (net.channel_codes[i].empty()) continue;  // inherit the menu
      try {
        (void)ecc::make_code(net.channel_codes[i]);
      } catch (const std::invalid_argument&) {
        throw SpecError(element_path("network.channel_codes", i),
                        "unknown code '" + net.channel_codes[i] + "'");
      }
    }
    if (!net.channel_environments.empty() &&
        net.channel_environments.size() != net.channel_count)
      throw SpecError("network.channel_environments",
                      "must give one timeline per channel (" +
                          std::to_string(net.channel_count) + "), got " +
                          std::to_string(net.channel_environments.size()));
    for (std::size_t i = 0; i < net.channel_environments.size(); ++i) {
      const EnvironmentEntry& entry = net.channel_environments[i];
      const std::string entry_path =
          element_path("network.channel_environments", i);
      const EnvironmentLowering lowering =
          environment_registry().make(entry.kind, entry_path + ".kind");
      try {
        (void)lowering(entry);
      } catch (const std::invalid_argument& e) {
        throw SpecError(entry_path, e.what());
      }
    }
  }

  const std::optional<std::vector<std::string>> known_metrics =
      known_objective_metrics(spec);
  for (std::size_t i = 0; i < spec.objectives.size(); ++i) {
    const std::string& metric = spec.objectives[i].metric;
    const std::string metric_path =
        element_path("objectives", i) + ".metric";
    if (metric.empty()) throw SpecError(metric_path, "must not be empty");
    if (known_metrics &&
        std::find(known_metrics->begin(), known_metrics->end(), metric) ==
            known_metrics->end()) {
      std::string known;
      for (const std::string& name : *known_metrics) {
        if (!known.empty()) known += ", ";
        known += name;
      }
      throw SpecError(metric_path, "unknown metric '" + metric +
                                       "' for this spec's evaluator "
                                       "(known: " + known + ")");
    }
  }
}

}  // namespace photecc::spec
