#include "photecc/serve/service.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

#include "photecc/explore/evaluators.hpp"
#include "photecc/explore/plan.hpp"
#include "photecc/explore/runner.hpp"
#include "photecc/math/hash.hpp"
#include "photecc/spec/error.hpp"
#include "photecc/spec/registries.hpp"
#include "photecc/spec/run.hpp"

namespace photecc::serve {

namespace json = math::json;

namespace {

/// Names of the declared axes in canonical grid order — the label keys
/// the cells of this sweep will carry.
std::vector<std::string> axis_names(const spec::ExperimentSpec& experiment) {
  std::vector<std::string> axes;
  if (!experiment.codes.empty()) axes.emplace_back("code");
  if (!experiment.ber_targets.empty()) axes.emplace_back("target_ber");
  if (!experiment.links.empty()) axes.emplace_back("link");
  if (!experiment.oni_counts.empty()) axes.emplace_back("oni_count");
  if (!experiment.traffic.empty()) axes.emplace_back("traffic");
  if (!experiment.laser_gating.empty()) axes.emplace_back("laser_gating");
  if (!experiment.policies.empty()) axes.emplace_back("policy");
  if (!experiment.modulations.empty()) axes.emplace_back("modulation");
  if (!experiment.environments.empty()) axes.emplace_back("environment");
  return axes;
}

std::string string_array(const std::vector<std::string>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out += ',';
    out += json::escape(values[i]);
  }
  out += ']';
  return out;
}

/// Metric names in export column order: the first-seen-order union over
/// all cells (the same order ExperimentResult::write_csv derives).
std::vector<std::string> metric_union(
    const std::vector<explore::CellResult>& cells) {
  std::vector<std::string> names;
  for (const explore::CellResult& cell : cells)
    for (const auto& [name, value] : cell.metrics) {
      (void)value;
      if (std::find(names.begin(), names.end(), name) == names.end())
        names.push_back(name);
    }
  return names;
}

std::string header_body(const spec::ExperimentSpec& experiment,
                        std::uint64_t hash, std::size_t cells,
                        std::size_t block_size,
                        const std::vector<std::string>& metrics) {
  std::string body = ",\"spec_hash\":\"" + math::hex64(hash) + '"';
  if (!experiment.name.empty())
    body += ",\"name\":" + json::escape(experiment.name);
  body += ",\"cells\":" + std::to_string(cells);
  body += ",\"block_size\":" + std::to_string(block_size);
  body += ",\"axes\":" + string_array(axis_names(experiment));
  body += ",\"metrics\":" + string_array(metrics);
  return body;
}

std::string cells_body(std::size_t begin, std::size_t end,
                       const std::vector<explore::CellResult>& cells) {
  std::ostringstream os;
  os << ",\"begin\":" << begin << ",\"end\":" << end << ",\"cells\":[";
  for (std::size_t i = begin; i < end; ++i) {
    if (i != begin) os << ',';
    explore::write_cell_json(os, cells[i]);
  }
  os << ']';
  return os.str();
}

/// The done record carries only the DETERMINISTIC slice of the run's
/// SweepStats (lowering and solver counts are functions of the grid;
/// times and thread counts are not and stay off the wire).
std::string done_body(const std::vector<explore::CellResult>& cells,
                      const explore::SweepStats& stats) {
  std::size_t feasible = 0;
  for (const explore::CellResult& cell : cells) feasible += cell.feasible;
  std::string body = ",\"cells\":" + std::to_string(cells.size());
  body += ",\"feasible\":" + std::to_string(feasible);
  body += ",\"lowered\":{\"channels_lowered\":" +
          std::to_string(stats.channels_lowered);
  body += ",\"root_solves\":" + std::to_string(stats.root_solves);
  body += ",\"solver_iterations\":" + std::to_string(stats.solver_iterations);
  body += ",\"warm_reuses\":" + std::to_string(stats.warm_reuses);
  body += '}';
  return body;
}

void emit(std::ostream& out, const std::string& line) {
  out << line << '\n';
  out.flush();
}

}  // namespace

std::string ServeStats::json(const PlanCache& cache) const {
  std::string out = "{\"requests\":" + std::to_string(requests);
  out += ",\"sweeps\":" + std::to_string(sweeps);
  out += ",\"errors\":" + std::to_string(errors);
  out += ",\"cache_hits\":" + std::to_string(cache_hits);
  out += ",\"cache_misses\":" + std::to_string(cache_misses);
  out += ",\"plans_lowered\":" + std::to_string(plans_lowered);
  out += ",\"cells_streamed\":" + std::to_string(cells_streamed);
  out += ",\"cache\":{\"entries\":" + std::to_string(cache.entries());
  out += ",\"bytes\":" + std::to_string(cache.size_bytes());
  out += ",\"budget_bytes\":" + std::to_string(cache.budget_bytes());
  out += ",\"evictions\":" + std::to_string(cache.evictions());
  out += "},\"sweep\":" + sweep.json();
  out += '}';
  return out;
}

Service::Service(ServiceOptions options)
    : options_(options), cache_(options.cache_budget_bytes) {}

std::size_t Service::exec_threads(
    const spec::ExperimentSpec& experiment) const {
  return options_.threads ? options_.threads : experiment.threads;
}

bool Service::handle_line(const std::string& line, std::ostream& out) {
  if (line.find_first_not_of(" \t\r") == std::string::npos) return true;
  ++stats_.requests;

  if (line.size() > options_.max_request_bytes) {
    emit_error(out, "", "limit",
               "", "request line of " + std::to_string(line.size()) +
                       " bytes exceeds max_request_bytes (" +
                       std::to_string(options_.max_request_bytes) + ")");
    return true;
  }

  Request request;
  try {
    request = parse_request(line);
  } catch (const json::ParseError& e) {
    emit_error(out, "", "parse", "", e.what());
    return true;
  } catch (const spec::SpecError& e) {
    emit_error(out, "", "request", e.field(), e.what());
    return true;
  }

  switch (request.kind) {
    case Request::Kind::kSweep:
      try {
        handle_sweep(request, out);
      } catch (const spec::SpecError& e) {
        emit_error(out, request.id, "spec", e.field(), e.what());
      } catch (const std::exception& e) {
        emit_error(out, request.id, "internal", "", e.what());
      }
      return true;
    case Request::Kind::kStats:
      emit(out, record("stats", request.id,
                       ",\"serve\":" + stats_.json(cache_)));
      return true;
    case Request::Kind::kShutdown:
      emit(out, record("bye", request.id, ""));
      return false;
  }
  return true;  // unreachable
}

bool Service::run(std::istream& in, std::ostream& out) {
  std::string line;
  while (std::getline(in, line))
    if (!handle_line(line, out)) return true;
  return false;
}

void Service::handle_sweep(const Request& request, std::ostream& out) {
  const spec::ExperimentSpec experiment =
      spec::from_json_value(*request.spec_document);
  const std::string canonical = experiment.to_json();
  const std::uint64_t hash = math::fnv1a64(canonical);

  if (const CachedSweep* cached = cache_.find(hash, canonical)) {
    ++stats_.sweeps;
    ++stats_.cache_hits;
    stats_.cells_streamed += cached->cells;
    stats_.sweep.merge(cached->stats.as_replay());
    for (const auto& [kind, body] : cached->records)
      emit(out, record(kind, request.id, body));
    return;
  }
  ++stats_.cache_misses;

  CachedSweep entry;
  const auto deliver = [&](const std::string& kind, std::string body) {
    emit(out, record(kind, request.id, body));
    entry.records.emplace_back(kind, std::move(body));
  };

  const explore::ScenarioGrid grid = spec::lower(experiment);
  explore::ExperimentResult result;
  if (!grid.has_noc_axes() &&
      (experiment.evaluator == "auto" || experiment.evaluator == "link")) {
    // Link hot path: lower once, stream blocks as they complete.  The
    // header can go out before any cell computes because the link
    // evaluator's metric columns are statically known.
    const explore::LoweredPlan plan(grid, {options_.block_size});
    ++stats_.plans_lowered;
    deliver("header",
            header_body(experiment, hash, plan.size(), options_.block_size,
                        explore::link_cell_metric_names()));
    result = plan.execute(
        exec_threads(experiment),
        [&](std::size_t begin, std::size_t end,
            const std::vector<explore::CellResult>& cells) {
          deliver("cells", cells_body(begin, end, cells));
        });
  } else {
    // NoC / custom evaluators have no streaming execute (and their
    // metric columns are only known from the cells), so the sweep runs
    // to completion first and the records are framed afterwards —
    // same record shapes, just not incremental.
    const explore::SweepRunner runner{{exec_threads(experiment)}};
    if (experiment.evaluator == "auto")
      result = runner.run(grid);
    else
      result = runner.run(grid, spec::evaluator_registry().make(
                                    experiment.evaluator, "evaluator"));
    deliver("header",
            header_body(experiment, hash, result.cells.size(),
                        options_.block_size, metric_union(result.cells)));
    const std::size_t block = std::max<std::size_t>(1, options_.block_size);
    for (std::size_t begin = 0; begin < result.cells.size(); begin += block)
      deliver("cells",
              cells_body(begin,
                         std::min(result.cells.size(), begin + block),
                         result.cells));
  }

  explore::SweepStats run_stats;
  if (result.stats) run_stats = *result.stats;
  run_stats.cells = result.cells.size();
  deliver("done", done_body(result.cells, run_stats));

  ++stats_.sweeps;
  stats_.cells_streamed += result.cells.size();
  stats_.sweep.merge(run_stats);
  entry.cells = result.cells.size();
  entry.stats = run_stats;
  cache_.insert(hash, canonical, std::move(entry));
}

void Service::emit_error(std::ostream& out, const std::string& id,
                         const std::string& stage, const std::string& field,
                         const std::string& message) {
  ++stats_.errors;
  std::string body = ",\"stage\":" + json::escape(stage);
  if (!field.empty()) body += ",\"field\":" + json::escape(field);
  body += ",\"message\":" + json::escape(message);
  emit(out, record("error", id, body));
}

}  // namespace photecc::serve
