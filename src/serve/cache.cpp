#include "photecc/serve/cache.hpp"

#include <algorithm>

namespace photecc::serve {

std::size_t CachedSweep::payload_bytes() const {
  std::size_t total = 0;
  for (const auto& [kind, body] : records)
    total += kind.size() + body.size();
  return total;
}

PlanCache::PlanCache(std::size_t budget_bytes) : budget_(budget_bytes) {}

const CachedSweep* PlanCache::find(std::uint64_t hash,
                                   const std::string& canonical) {
  const auto bucket = index_.find(hash);
  if (bucket == index_.end()) return nullptr;
  for (const EntryList::iterator it : bucket->second) {
    if (it->canonical != canonical) continue;  // FNV collision, not a hit
    lru_.splice(lru_.begin(), lru_, it);
    return &it->sweep;
  }
  return nullptr;
}

void PlanCache::insert(std::uint64_t hash, std::string canonical,
                       CachedSweep sweep) {
  const std::size_t bytes = canonical.size() + sweep.payload_bytes();
  if (bytes > budget_) return;
  if (find(hash, canonical) != nullptr) return;
  lru_.push_front(
      Entry{hash, std::move(canonical), std::move(sweep), bytes});
  index_[hash].push_back(lru_.begin());
  bytes_ += bytes;
  while (bytes_ > budget_ && lru_.size() > 1) evict_lru();
}

void PlanCache::evict_lru() {
  const EntryList::iterator victim = std::prev(lru_.end());
  auto& bucket = index_[victim->hash];
  bucket.erase(std::find(bucket.begin(), bucket.end(), victim));
  if (bucket.empty()) index_.erase(victim->hash);
  bytes_ -= victim->bytes;
  lru_.erase(victim);
  ++evictions_;
}

}  // namespace photecc::serve
