// The sweep service itself: a Service owns a PlanCache and turns
// request lines into response-record streams.
//
//   Service service({.threads = 2});
//   service.run(std::cin, std::cout);          // NDJSON loop until
//                                              // shutdown/EOF
//   service.handle_line(line, out);            // or one line at a time
//
// A sweep request is answered incrementally: the header goes out as
// soon as the plan is lowered, each cell block as soon as every earlier
// block has finished (LoweredPlan's in-order streaming execute), the
// done record last — so large grids stream while still computing.
// Identical canonical specs are answered from the PlanCache with the
// byte-identical record stream of the original compute, at zero solver
// work.
//
// ServiceOptions are OPERATIONAL knobs only: threads and cache budget
// can never change a sweep response's bytes.  block_size can (it sets
// the cells-record framing), which is why the determinism contract in
// protocol.hpp is "pure function of canonical spec + service block
// size".
#ifndef PHOTECC_SERVE_SERVICE_HPP
#define PHOTECC_SERVE_SERVICE_HPP

#include <cstddef>
#include <iosfwd>
#include <string>

#include "photecc/explore/result.hpp"
#include "photecc/serve/cache.hpp"
#include "photecc/serve/protocol.hpp"

namespace photecc::serve {

struct ServiceOptions {
  /// Worker threads per sweep: 0 = honour each spec's own `threads`
  /// field (which itself treats 0 as hardware concurrency); nonzero
  /// overrides every spec.  Never affects response bytes.
  std::size_t threads = 0;
  /// Cells per streamed `cells` record (and per work unit).
  std::size_t block_size = 64;
  /// PlanCache byte budget.
  std::size_t cache_budget_bytes = 64u << 20;
  /// Request lines longer than this are rejected with an "error"
  /// record (stage "limit") without being parsed.
  std::size_t max_request_bytes = 1u << 20;
};

/// Daemon-lifetime counters, reported by the "stats" request kind.
/// Explicitly OUTSIDE the sweep-response determinism contract: the
/// embedded SweepStats carries wall times and the cache counters
/// depend on request history.
struct ServeStats {
  std::size_t requests = 0;        ///< non-blank lines handled
  std::size_t sweeps = 0;          ///< sweep requests answered (hit or miss)
  std::size_t errors = 0;          ///< error records emitted
  std::size_t cache_hits = 0;      ///< sweeps replayed from the cache
  std::size_t cache_misses = 0;    ///< sweeps that had to compute
  std::size_t plans_lowered = 0;   ///< actual LoweredPlan constructions
  std::size_t cells_streamed = 0;  ///< cells across all sweep responses
  /// Lifetime SweepStats: each computed run's stats merged in full,
  /// each cache replay merged as as_replay() — so `sweep.cells` counts
  /// every cell served while the work counters count only work done.
  explore::SweepStats sweep;

  /// Flat JSON object including the cache's occupancy counters.
  [[nodiscard]] std::string json(const PlanCache& cache) const;
};

class Service {
 public:
  explicit Service(ServiceOptions options = {});

  /// Handles one request line (blank lines are ignored), writing the
  /// response records to `out` (one per line, flushed per record).
  /// Returns false when the line was a shutdown request (after
  /// emitting its "bye" record) — the caller should stop reading.
  /// Never throws on bad input: every rejection is an "error" record.
  bool handle_line(const std::string& line, std::ostream& out);

  /// Reads request lines from `in` until shutdown or EOF.  Returns
  /// true for a clean shutdown, false for EOF.
  bool run(std::istream& in, std::ostream& out);

  [[nodiscard]] const ServeStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const PlanCache& cache() const noexcept { return cache_; }
  [[nodiscard]] const ServiceOptions& options() const noexcept {
    return options_;
  }

 private:
  /// Threads to execute with: the service override, else the spec's.
  [[nodiscard]] std::size_t exec_threads(
      const spec::ExperimentSpec& experiment) const;

  void handle_sweep(const Request& request, std::ostream& out);
  void emit_error(std::ostream& out, const std::string& id,
                  const std::string& stage, const std::string& field,
                  const std::string& message);

  ServiceOptions options_;
  PlanCache cache_;
  ServeStats stats_;
};

}  // namespace photecc::serve

#endif  // PHOTECC_SERVE_SERVICE_HPP
