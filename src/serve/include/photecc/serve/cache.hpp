// Memoization core of the sweep service: canonical-spec-bytes ->
// fully rendered sweep response, with an LRU byte budget.
//
// The key is the spec's *canonical* JSON dump (spec::to_json of the
// validated spec), so any two request documents that mean the same
// experiment — different whitespace, different key order of the
// original file, v1 vs v2 framing of the same fields — collapse to one
// entry, while everything that changes even one canonical byte (a
// different thread count, one more BER target) is a distinct key.
// Reuse is EXACT: lookups hash with math::fnv1a64 to find the bucket
// but always compare the full canonical bytes, so an FNV collision can
// never serve the wrong sweep (the lesson from the lowered-plan work:
// only byte-equal-key reuse is allowed on export paths — no
// tolerance-level sharing).
//
// What is cached is the rendered response itself — the (kind, body)
// split of every header/cells/done record — so a replay is a pure
// write of stored bytes and byte-identity with the original compute is
// structural, not re-derived.  The compute run's SweepStats ride along
// so observability can account replays via SweepStats::as_replay.
#ifndef PHOTECC_SERVE_CACHE_HPP
#define PHOTECC_SERVE_CACHE_HPP

#include <cstddef>
#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "photecc/explore/result.hpp"

namespace photecc::serve {

/// One cached sweep response: the rendered records of the original
/// compute, id-less ((kind, body) pairs — protocol.hpp's record() puts
/// the requesting client's id back at emission time).
struct CachedSweep {
  std::vector<std::pair<std::string, std::string>> records;
  std::size_t cells = 0;
  /// The original compute run's counters; replays merge
  /// stats.as_replay() into the daemon totals (zero solver work).
  explore::SweepStats stats;

  /// Bytes of record payload held (kinds + bodies); the cache adds the
  /// canonical key on top when accounting an entry against the budget.
  [[nodiscard]] std::size_t payload_bytes() const;
};

class PlanCache {
 public:
  /// `budget_bytes` caps the summed payload+key bytes of all entries
  /// (allocator overhead is not modelled).  A single response larger
  /// than the whole budget is not cached at all — it would only evict
  /// everything else and then fail to fit.
  explicit PlanCache(std::size_t budget_bytes);

  /// Exact lookup: the hash narrows to a bucket, the canonical bytes
  /// decide.  A hit moves the entry to most-recently-used and returns
  /// a pointer valid until the next insert(); a miss returns nullptr.
  [[nodiscard]] const CachedSweep* find(std::uint64_t hash,
                                        const std::string& canonical);

  /// Inserts at most-recently-used and evicts from the LRU end until
  /// the budget holds again.  Inserting an already-present key is a
  /// no-op (the first rendering is as good as any — they are
  /// byte-identical by the determinism contract).
  void insert(std::uint64_t hash, std::string canonical, CachedSweep sweep);

  [[nodiscard]] std::size_t entries() const noexcept { return lru_.size(); }
  [[nodiscard]] std::size_t size_bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::size_t budget_bytes() const noexcept { return budget_; }
  [[nodiscard]] std::size_t evictions() const noexcept { return evictions_; }

 private:
  struct Entry {
    std::uint64_t hash = 0;
    std::string canonical;
    CachedSweep sweep;
    std::size_t bytes = 0;
  };
  using EntryList = std::list<Entry>;

  void evict_lru();

  std::size_t budget_;
  std::size_t bytes_ = 0;
  std::size_t evictions_ = 0;
  EntryList lru_;  ///< front = most recently used
  /// hash -> every entry with that hash (collision chain; the
  /// canonical strings disambiguate).
  std::unordered_map<std::uint64_t, std::vector<EntryList::iterator>> index_;
};

}  // namespace photecc::serve

#endif  // PHOTECC_SERVE_CACHE_HPP
