// Unix-domain-socket frontend: bind a path, accept one client at a
// time, run the Service's NDJSON loop over the connection.  Only
// compiled on __unix__ (the stdin/stdout frontend is the portable
// one); on other platforms serve_unix_socket reports failure.
#ifndef PHOTECC_SERVE_SOCKET_HPP
#define PHOTECC_SERVE_SOCKET_HPP

#include <cstddef>
#include <string>

#include "photecc/serve/service.hpp"

namespace photecc::serve {

struct SocketOptions {
  /// Filesystem path to bind; an existing socket file is replaced.
  std::string path;
  /// Stop after this many client connections (0 = until a client sends
  /// a shutdown request).
  std::size_t max_connections = 0;
};

/// Binds `options.path`, then accepts clients sequentially, running
/// `service.run` over each connection — one NDJSON session per client,
/// all sharing the service's PlanCache, so a spec computed for one
/// client replays byte-identically for the next.  Returns true after a
/// clean stop (shutdown request or max_connections reached), false on
/// any socket-layer failure (message on `error`, left empty on
/// success).  On non-unix platforms always fails.
bool serve_unix_socket(Service& service, const SocketOptions& options,
                       std::string& error);

}  // namespace photecc::serve

#endif  // PHOTECC_SERVE_SOCKET_HPP
