// Wire protocol of the sweep-service daemon: NDJSON in both
// directions.  Every request is one JSON object on one line; every
// response is a stream of JSON records, one per line, in this order
// for a sweep:
//
//   {"kind":"header", ...}   spec hash, cell count, axis/metric names
//   {"kind":"cells",  ...}   one record per cell block, in ascending
//                            block order (the deterministic partition
//                            of math::parallel_for_blocks)
//   {"kind":"done",   ...}   cell/feasible totals + the deterministic
//                            lowering counters
//
// plus {"kind":"stats"} / {"kind":"bye"} for the control requests and
// {"kind":"error"} for anything rejected.  Request envelope:
//
//   {"kind":"sweep", "id": "r1", "spec": { ...ExperimentSpec doc... }}
//   {"kind":"stats"}
//   {"kind":"shutdown"}
//
// "id" is optional; when present it is echoed as the second key of
// every record of that request's response, so clients may interleave
// correlation ids without affecting what is cached (cached records are
// stored id-less and the id is re-attached at emission).
//
// Determinism contract: the header/cells/done records of a sweep
// response are a pure function of the spec document's *canonical* form
// and the service's block size — no timings, no thread counts, no
// cache state — which is what makes "cached response == recomputed
// response" a byte-level guarantee.  The stats record is explicitly
// outside this guarantee (it reports wall times and cache counters).
#ifndef PHOTECC_SERVE_PROTOCOL_HPP
#define PHOTECC_SERVE_PROTOCOL_HPP

#include <optional>
#include <string>
#include <string_view>

#include "photecc/math/json.hpp"
#include "photecc/spec/spec.hpp"

namespace photecc::serve {

/// One parsed request line.
struct Request {
  enum class Kind { kSweep, kStats, kShutdown };

  Kind kind = Kind::kSweep;
  /// Correlation id ("" = absent); echoed on every response record.
  std::string id;
  /// The embedded spec document (kSweep only), still unvalidated —
  /// the service lowers it with spec::from_json_value so spec-level
  /// rejections are distinguishable from envelope-level ones.
  std::optional<math::json::Value> spec_document;
};

/// Parses one request line.  Throws math::json::ParseError for
/// malformed JSON and spec::SpecError (field + reason) for envelope
/// violations: non-object lines, missing/unknown "kind", unknown keys,
/// a missing "spec" on a sweep or a stray one elsewhere, non-string or
/// empty "id".
[[nodiscard]] Request parse_request(const std::string& line);

/// Renders one response record: {"kind":<kind>[,"id":<id>]<body>}.
/// `body` is either empty or starts with ',' and supplies the
/// remaining key/value pairs — the (kind, body) split is what the plan
/// cache stores, so a cached record can be replayed under any
/// request's id.
[[nodiscard]] std::string record(std::string_view kind,
                                 const std::string& id,
                                 std::string_view body);

/// Builds the one-line sweep request embedding `experiment`'s
/// canonical document (minified via math::json::write, since NDJSON
/// framing forbids the pretty dump's newlines).
[[nodiscard]] std::string sweep_request_line(
    const spec::ExperimentSpec& experiment, const std::string& id = "");

/// Builds a bodyless request line ("stats", "shutdown").
[[nodiscard]] std::string request_line(std::string_view kind,
                                       const std::string& id = "");

}  // namespace photecc::serve

#endif  // PHOTECC_SERVE_PROTOCOL_HPP
