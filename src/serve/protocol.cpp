#include "photecc/serve/protocol.hpp"

#include <utility>

#include "photecc/spec/error.hpp"

namespace photecc::serve {

namespace json = math::json;

namespace {

std::string expect_string(const json::Value& value, const std::string& path) {
  try {
    return value.as_string();
  } catch (const json::TypeError& e) {
    throw spec::SpecError(path, e.what());
  }
}

}  // namespace

Request parse_request(const std::string& line) {
  const json::Value document = json::parse(line);
  const json::Value::Object* members = nullptr;
  try {
    members = &document.as_object();
  } catch (const json::TypeError& e) {
    throw spec::SpecError("request", e.what());
  }

  Request request;
  std::string kind;
  bool saw_kind = false;
  bool saw_spec = false;
  for (const auto& [key, value] : *members) {
    if (key == "kind") {
      kind = expect_string(value, "kind");
      saw_kind = true;
    } else if (key == "id") {
      request.id = expect_string(value, "id");
      if (request.id.empty())
        throw spec::SpecError("id", "must not be empty (omit the key)");
    } else if (key == "spec") {
      request.spec_document = value;
      saw_spec = true;
    } else {
      throw spec::SpecError(key,
                            "unknown request key (expected: kind, id, spec)");
    }
  }
  if (!saw_kind)
    throw spec::SpecError("kind",
                          "required (one of: sweep, stats, shutdown)");
  if (kind == "sweep") {
    request.kind = Request::Kind::kSweep;
    if (!saw_spec)
      throw spec::SpecError("spec", "required for kind 'sweep'");
  } else if (kind == "stats") {
    request.kind = Request::Kind::kStats;
  } else if (kind == "shutdown") {
    request.kind = Request::Kind::kShutdown;
  } else {
    throw spec::SpecError("kind", "unknown request kind '" + kind +
                                      "' (known: sweep, stats, shutdown)");
  }
  if (request.kind != Request::Kind::kSweep && saw_spec)
    throw spec::SpecError("spec", "only valid for kind 'sweep'");
  return request;
}

std::string record(std::string_view kind, const std::string& id,
                   std::string_view body) {
  std::string out = "{\"kind\":";
  out += json::escape(kind);
  if (!id.empty()) {
    out += ",\"id\":";
    out += json::escape(id);
  }
  out += body;
  out += '}';
  return out;
}

std::string sweep_request_line(const spec::ExperimentSpec& experiment,
                               const std::string& id) {
  std::string body = ",\"spec\":";
  body += json::write(json::parse(experiment.to_json()));
  return record("sweep", id, body);
}

std::string request_line(std::string_view kind, const std::string& id) {
  return record(kind, id, "");
}

}  // namespace photecc::serve
