#include "photecc/serve/socket.hpp"

#ifdef __unix__

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <istream>
#include <ostream>
#include <streambuf>

namespace photecc::serve {

namespace {

/// Minimal bidirectional streambuf over a connected file descriptor —
/// just enough for std::getline in and flushed records out.
class FdStreamBuf : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd) : fd_(fd) {
    setg(in_, in_, in_);
    setp(out_, out_ + sizeof(out_));
  }

 protected:
  int_type underflow() override {
    ssize_t n;
    do {
      n = ::read(fd_, in_, sizeof(in_));
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return traits_type::eof();
    setg(in_, in_, in_ + n);
    return traits_type::to_int_type(in_[0]);
  }

  int_type overflow(int_type ch) override {
    if (!flush_out()) return traits_type::eof();
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(ch);
      pbump(1);
    }
    return traits_type::not_eof(ch);
  }

  int sync() override { return flush_out() ? 0 : -1; }

 private:
  bool flush_out() {
    const char* data = pbase();
    std::size_t remaining = static_cast<std::size_t>(pptr() - pbase());
    while (remaining > 0) {
      const ssize_t n = ::write(fd_, data, remaining);
      if (n < 0 && errno == EINTR) continue;  // retry interrupted writes
      if (n <= 0) return false;
      data += n;
      remaining -= static_cast<std::size_t>(n);
    }
    setp(out_, out_ + sizeof(out_));
    return true;
  }

  int fd_;
  char in_[4096];
  char out_[4096];
};

std::string errno_message(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

bool serve_unix_socket(Service& service, const SocketOptions& options,
                       std::string& error) {
  error.clear();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options.path.empty() ||
      options.path.size() >= sizeof(addr.sun_path)) {
    error = "socket path empty or too long: '" + options.path + "'";
    return false;
  }
  std::strncpy(addr.sun_path, options.path.c_str(),
               sizeof(addr.sun_path) - 1);

  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    error = errno_message("socket");
    return false;
  }
  ::unlink(options.path.c_str());
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listener, 1) != 0) {
    error = errno_message("bind/listen on '" + options.path + "'");
    ::close(listener);
    return false;
  }

  bool shutdown_seen = false;
  std::size_t connections = 0;
  while (!shutdown_seen) {
    const int client = ::accept(listener, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;  // signal during accept, not an error
      error = errno_message("accept");
      break;
    }
    {
      FdStreamBuf buf(client);
      std::istream in(&buf);
      std::ostream out(&buf);
      shutdown_seen = service.run(in, out);
      out.flush();
    }
    ::close(client);
    ++connections;
    if (options.max_connections && connections >= options.max_connections)
      break;
  }

  ::close(listener);
  ::unlink(options.path.c_str());
  return error.empty();
}

}  // namespace photecc::serve

#else  // !__unix__

namespace photecc::serve {

bool serve_unix_socket(Service&, const SocketOptions&, std::string& error) {
  error = "unix-domain sockets are not available on this platform";
  return false;
}

}  // namespace photecc::serve

#endif  // __unix__
